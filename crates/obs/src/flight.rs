//! Flight recorder: a bounded ring of recent serving events plus
//! rolling SLO windows, dumped as a `ts3.flight.v1` postmortem when
//! things go wrong.
//!
//! Metrics tell you the deadline-miss ratio is 40%; the flight recorder
//! tells you *what the last N ticks looked like* when it crossed that
//! line. The recorder keeps:
//!
//! * an **event ring** of the most recent [`FlightConfig::capacity`]
//!   tick-stamped events (responses, deadline misses, drift alerts,
//!   free-form notes) — old events fall off the front;
//! * a **rolling response window** of the last
//!   [`FlightConfig::window`] responses, from which the current
//!   deadline-miss ratio is computed.
//!
//! When the miss ratio crosses [`FlightConfig::miss_threshold`] (with
//! at least [`FlightConfig::min_window`] responses observed) the
//! trigger **latches** and — if [`FlightConfig::out`] is set — the
//! postmortem JSON is written there immediately, once. A panic hook
//! ([`install_panic_hook`]) covers the crash case: the postmortem is
//! flushed before the process dies, chaining to the previously
//! installed hook.
//!
//! Unlike spans/metrics the recorder is **opt-in via [`configure`]**,
//! independent of `TS3_TRACE`: a production server wants postmortems
//! even with tracing off. Unconfigured, every entry point is one
//! relaxed atomic load. All recorded data is tick-stamped (virtual
//! clock) — no wallclock — so postmortems are deterministic and the
//! determinism suite can assert on them.

use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use ts3_json::Json;

/// Flight-recorder knobs. Start from `FlightConfig::default()` and
/// override; `..Default::default()` keeps call sites stable as knobs
/// are added.
#[derive(Debug, Clone)]
pub struct FlightConfig {
    /// Events retained in the ring (oldest evicted first).
    pub capacity: usize,
    /// Responses in the rolling SLO window.
    pub window: usize,
    /// Responses required before the miss-ratio trigger can fire
    /// (avoids a 1-for-1 start tripping a 100% ratio).
    pub min_window: usize,
    /// Deadline-miss ratio in the window that trips the trigger.
    pub miss_threshold: f64,
    /// Where to write the `ts3.flight.v1` postmortem when the trigger
    /// fires (and from the panic hook). `None` = record but never
    /// auto-dump; read [`to_json`] manually.
    pub out: Option<PathBuf>,
}

impl Default for FlightConfig {
    fn default() -> Self {
        FlightConfig {
            capacity: 1024,
            window: 64,
            min_window: 16,
            miss_threshold: 0.5,
            out: None,
        }
    }
}

/// One tick-stamped entry in the event ring.
#[derive(Debug, Clone)]
pub struct FlightEvent {
    /// Virtual tick the event happened at.
    pub tick: u64,
    /// Event kind (`respond`, `deadline_miss`, `drift`, `note`).
    pub kind: &'static str,
    /// Owning tenant, if the event has one.
    pub tenant: Option<usize>,
    /// Free-form detail (owned so dynamic values survive the ring).
    pub detail: String,
}

struct Recorder {
    cfg: FlightConfig,
    ring: VecDeque<FlightEvent>,
    /// Rolling response window: `true` = deadline missed.
    window: VecDeque<bool>,
    responses: u64,
    misses: u64,
    drift_alerts: u64,
    triggered_at: Option<u64>,
    /// `(responses, misses)` in the rolling window at the moment the
    /// trigger latched — the postmortem reports the window *as fired*,
    /// not whatever it rolled on to afterwards.
    trigger_window: Option<(usize, usize)>,
    dumped: bool,
}

static ACTIVE: AtomicBool = AtomicBool::new(false);

fn recorder() -> &'static Mutex<Option<Recorder>> {
    static R: OnceLock<Mutex<Option<Recorder>>> = OnceLock::new();
    R.get_or_init(|| Mutex::new(None))
}

/// Arm the recorder with `cfg`, clearing any previous state. Until
/// this is called every `note_*` entry point is one atomic load.
pub fn configure(cfg: FlightConfig) {
    // ts3-lint: allow(no-unwrap-in-lib) flight mutex poisoning means a recording thread panicked; recorder state is unrecoverable
    let mut r = recorder().lock().unwrap();
    *r = Some(Recorder {
        cfg,
        ring: VecDeque::new(),
        window: VecDeque::new(),
        responses: 0,
        misses: 0,
        drift_alerts: 0,
        triggered_at: None,
        trigger_window: None,
        dumped: false,
    });
    ACTIVE.store(true, Ordering::Relaxed);
}

/// Disarm and clear the recorder.
pub fn reset_flight() {
    ACTIVE.store(false, Ordering::Relaxed);
    // ts3-lint: allow(no-unwrap-in-lib) flight mutex poisoning means a recording thread panicked; recorder state is unrecoverable
    *recorder().lock().unwrap() = None;
}

/// True once the miss-ratio trigger has latched.
pub fn triggered() -> bool {
    if !ACTIVE.load(Ordering::Relaxed) {
        return false;
    }
    // ts3-lint: allow(no-unwrap-in-lib) flight mutex poisoning means a recording thread panicked; recorder state is unrecoverable
    recorder().lock().unwrap().as_ref().is_some_and(|r| r.triggered_at.is_some())
}

fn push_event(r: &mut Recorder, ev: FlightEvent) {
    if r.ring.len() >= r.cfg.capacity {
        r.ring.pop_front();
    }
    r.ring.push_back(ev);
}

fn render(r: &Recorder) -> Json {
    let events: Json = r
        .ring
        .iter()
        .map(|e| {
            Json::obj([
                ("tick", Json::Num(e.tick as f64)),
                ("kind", Json::Str(e.kind.to_string())),
                (
                    "tenant",
                    e.tenant.map_or(Json::Null, |t| Json::Num(t as f64)),
                ),
                ("detail", Json::Str(e.detail.clone())),
            ])
        })
        .collect();
    // Report the window frozen at trigger time when the trigger fired;
    // the live window otherwise (un-fired recorder dumped via to_json).
    let (window_responses, window_misses) = r
        .trigger_window
        .unwrap_or_else(|| (r.window.len(), r.window.iter().filter(|&&m| m).count()));
    Json::obj([
        ("schema", Json::Str("ts3.flight.v1".to_string())),
        (
            "trigger",
            Json::obj([
                (
                    "fired_at_tick",
                    r.triggered_at.map_or(Json::Null, |t| Json::Num(t as f64)),
                ),
                ("miss_threshold", Json::Num(r.cfg.miss_threshold)),
                ("window", Json::Num(r.cfg.window as f64)),
                ("window_responses", Json::Num(window_responses as f64)),
                ("window_misses", Json::Num(window_misses as f64)),
                (
                    "window_miss_ratio",
                    Json::Num(if window_responses == 0 {
                        0.0
                    } else {
                        window_misses as f64 / window_responses as f64
                    }),
                ),
            ]),
        ),
        (
            "totals",
            Json::obj([
                ("responses", Json::Num(r.responses as f64)),
                ("deadline_misses", Json::Num(r.misses as f64)),
                ("drift_alerts", Json::Num(r.drift_alerts as f64)),
            ]),
        ),
        ("events", events),
    ])
}

fn dump_if_configured(r: &mut Recorder) {
    if r.dumped {
        return;
    }
    let Some(path) = r.cfg.out.clone() else { return };
    r.dumped = true;
    let doc = render(r);
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    let _ = std::fs::write(&path, doc.to_string_pretty());
}

/// Record a response at `tick`: feeds the event ring and the rolling
/// SLO window; fires (and latches) the trigger when the windowed miss
/// ratio crosses the threshold.
pub fn note_response(tick: u64, tenant: usize, missed: bool) {
    if !ACTIVE.load(Ordering::Relaxed) {
        return;
    }
    // ts3-lint: allow(no-unwrap-in-lib) flight mutex poisoning means a recording thread panicked; recorder state is unrecoverable
    let mut guard = recorder().lock().unwrap();
    let Some(r) = guard.as_mut() else { return };
    r.responses += 1;
    if missed {
        r.misses += 1;
    }
    if r.window.len() >= r.cfg.window {
        r.window.pop_front();
    }
    r.window.push_back(missed);
    push_event(
        r,
        FlightEvent {
            tick,
            kind: if missed { "deadline_miss" } else { "respond" },
            tenant: Some(tenant),
            detail: String::new(),
        },
    );
    if r.triggered_at.is_none() && r.window.len() >= r.cfg.min_window {
        let misses = r.window.iter().filter(|&&m| m).count();
        if misses as f64 / r.window.len() as f64 >= r.cfg.miss_threshold {
            r.triggered_at = Some(tick);
            r.trigger_window = Some((r.window.len(), misses));
            dump_if_configured(r);
        }
    }
}

/// Record a period-drift alert from the streaming monitor at `tick`:
/// the sliding-DFT dominant period `observed` disagreed with the exact
/// decomposition's `expected`.
pub fn note_drift(tick: u64, tenant: usize, expected: usize, observed: usize) {
    if !ACTIVE.load(Ordering::Relaxed) {
        return;
    }
    // ts3-lint: allow(no-unwrap-in-lib) flight mutex poisoning means a recording thread panicked; recorder state is unrecoverable
    let mut guard = recorder().lock().unwrap();
    let Some(r) = guard.as_mut() else { return };
    r.drift_alerts += 1;
    push_event(
        r,
        FlightEvent {
            tick,
            kind: "drift",
            tenant: Some(tenant),
            detail: format!("expected_t_f={expected} observed={observed}"),
        },
    );
}

/// Record a free-form note at `tick` (config changes, stall markers —
/// anything a postmortem reader would want on the ribbon).
pub fn note(tick: u64, detail: &str) {
    if !ACTIVE.load(Ordering::Relaxed) {
        return;
    }
    // ts3-lint: allow(no-unwrap-in-lib) flight mutex poisoning means a recording thread panicked; recorder state is unrecoverable
    let mut guard = recorder().lock().unwrap();
    let Some(r) = guard.as_mut() else { return };
    push_event(r, FlightEvent { tick, kind: "note", tenant: None, detail: detail.to_string() });
}

/// Render the current recorder state as a `ts3.flight.v1` document
/// (`None` when unconfigured).
pub fn to_json() -> Option<Json> {
    if !ACTIVE.load(Ordering::Relaxed) {
        return None;
    }
    // ts3-lint: allow(no-unwrap-in-lib) flight mutex poisoning means a recording thread panicked; recorder state is unrecoverable
    recorder().lock().unwrap().as_ref().map(render)
}

/// Force a dump to [`FlightConfig::out`] now regardless of trigger
/// state (the panic hook and orderly-shutdown paths). No-op when
/// unconfigured, `out` is `None`, or a dump already happened.
pub fn dump_now() {
    if !ACTIVE.load(Ordering::Relaxed) {
        return;
    }
    // ts3-lint: allow(no-unwrap-in-lib) flight mutex poisoning means a recording thread panicked; recorder state is unrecoverable
    let mut guard = recorder().lock().unwrap();
    if let Some(r) = guard.as_mut() {
        dump_if_configured(r);
    }
}

/// Install a panic hook that flushes the postmortem before the process
/// dies, then chains to the previously installed hook. Installs at
/// most once per process.
pub fn install_panic_hook() {
    static INSTALLED: AtomicBool = AtomicBool::new(false);
    if INSTALLED.swap(true, Ordering::SeqCst) {
        return;
    }
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        // A poisoned recorder mutex is expected here (we're panicking);
        // recover the guard rather than aborting the hook.
        if ACTIVE.load(Ordering::Relaxed) {
            let mut guard = recorder().lock().unwrap_or_else(|e| e.into_inner());
            if let Some(r) = guard.as_mut() {
                dump_if_configured(r);
            }
        }
        prev(info);
    }));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::test_lock;

    #[test]
    fn unconfigured_recorder_is_inert() {
        let _g = test_lock();
        reset_flight();
        note_response(1, 0, true);
        note_drift(1, 0, 8, 12);
        assert!(to_json().is_none());
        assert!(!triggered());
    }

    #[test]
    fn miss_ratio_trigger_latches_once() {
        let _g = test_lock();
        configure(FlightConfig {
            window: 8,
            min_window: 4,
            miss_threshold: 0.5,
            ..Default::default()
        });
        for tick in 0..3 {
            note_response(tick, 0, false);
        }
        assert!(!triggered(), "below min_window");
        note_response(3, 0, true);
        note_response(4, 0, true);
        assert!(!triggered(), "2/5 misses under threshold");
        note_response(5, 1, true);
        assert!(triggered(), "3/6 misses crosses 0.5");
        // Recovery does not unlatch.
        for tick in 6..20 {
            note_response(tick, 0, false);
        }
        assert!(triggered());
        let doc = to_json().unwrap();
        assert_eq!(doc.get("schema").and_then(|s| s.as_str()), Some("ts3.flight.v1"));
        let trig = doc.get("trigger").unwrap();
        assert_eq!(trig.get("fired_at_tick").and_then(|v| v.as_f64()), Some(5.0));
        reset_flight();
    }

    #[test]
    fn ring_evicts_oldest() {
        let _g = test_lock();
        configure(FlightConfig { capacity: 4, ..Default::default() });
        for tick in 0..10 {
            note(tick, "x");
        }
        let doc = to_json().unwrap();
        let events = doc.get("events").and_then(|e| e.as_array()).unwrap().to_vec();
        assert_eq!(events.len(), 4);
        assert_eq!(events[0].get("tick").and_then(|v| v.as_f64()), Some(6.0));
        assert_eq!(events[3].get("tick").and_then(|v| v.as_f64()), Some(9.0));
        reset_flight();
    }

    #[test]
    fn drift_events_carry_detail() {
        let _g = test_lock();
        configure(FlightConfig::default());
        note_drift(7, 2, 8, 12);
        let doc = to_json().unwrap();
        let events = doc.get("events").and_then(|e| e.as_array()).unwrap().to_vec();
        assert_eq!(events[0].get("kind").and_then(|k| k.as_str()), Some("drift"));
        assert_eq!(
            events[0].get("detail").and_then(|d| d.as_str()),
            Some("expected_t_f=8 observed=12")
        );
        assert_eq!(
            doc.get("totals").unwrap().get("drift_alerts").and_then(|v| v.as_f64()),
            Some(1.0)
        );
        reset_flight();
    }
}
