//! The disabled-path cost contract: with `TS3_TRACE=0`, opening and
//! dropping spans, recording fields, emitting events and bumping
//! counters must not allocate at all. A counting global allocator
//! makes the claim checkable instead of aspirational.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: pure pass-through to the `System` allocator — every pointer,
// layout and length reaches `System` unchanged, so `System`'s own
// GlobalAlloc guarantees carry over verbatim. The only added behaviour
// is a SeqCst counter bump, which touches no allocator state.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: forwards the caller's layout to `System.alloc` unchanged;
    // the returned pointer is whatever `System` produced.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    // SAFETY: the caller promises `ptr`/`layout` came from this
    // allocator, which is `System` underneath — forwarding is sound.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    // SAFETY: same pass-through argument as `dealloc`; `System.realloc`
    // receives the caller's pointer, layout and size untouched.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::SeqCst);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

#[test]
fn no_alloc_when_disabled() {
    ts3_obs::set_level(0);
    // Warm every lazily-initialised path (env parsing caches a string,
    // the collector and registry exist behind OnceLocks) so the
    // measured loop sees only steady-state behaviour.
    assert!(!ts3_obs::enabled());
    {
        let mut s = ts3_obs::span("warm");
        s.field("k", 1u64);
    }
    ts3_obs::event("warm", |f| f.set("k", 1u64));
    ts3_obs::counter_add("warm", 1);
    ts3_obs::gauge_set("warm", 0.0);
    ts3_obs::observe("warm", 0.0);
    ts3_obs::counter_add_l("warm", &[("tenant", "0")], 1);
    let _ = ts3_obs::begin_request(0, 0, 1);
    drop(ts3_obs::begin_batch(0, 0, 1));
    ts3_obs::flight::note_response(0, 0, false);

    let before = ALLOCS.load(Ordering::SeqCst);
    for i in 0..10_000u64 {
        let mut s = ts3_obs::span("tensor.matmul");
        s.field("m", 64u64);
        s.field("flops", i);
        ts3_obs::counter_add("tensor.matmul.flops", i);
        ts3_obs::gauge_set("optim.grad_norm", 0.5);
        ts3_obs::observe("optim.grad_norm", 0.5);
        ts3_obs::event("epoch", |f| f.set("loss", 0.5f64));
        // v2 entry points: labeled metrics, request timelines and the
        // (unconfigured) flight recorder are equally free when off.
        // Label slices of static strs are stack-built — no heap.
        ts3_obs::counter_add_l("serve.requests", &[("tenant", "0")], 1);
        ts3_obs::gauge_set_l("serve.queue_depth", &[("tenant", "0")], 1.0);
        ts3_obs::observe_l("serve.latency_ticks", &[("tenant", "0")], 1.0);
        let ctx = ts3_obs::begin_request(0, i, i + 2);
        ts3_obs::mark_seen(ctx, i);
        {
            let b = ts3_obs::begin_batch(0, i, 1);
            ts3_obs::mark_flushed(ctx, i, b.id(), 1);
            let _stage = ts3_obs::stage_scope("stage");
        }
        ts3_obs::mark_respond(ctx, i, false);
        ts3_obs::flight::note_response(i, 0, false);
        ts3_obs::flight::note_drift(i, 0, 8, 8);
    }
    let after = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(after - before, 0, "disabled spans/events/metrics must not allocate");

    // And nothing was recorded either.
    let (spans, events, dropped) = ts3_obs::snapshot_records();
    assert!(spans.is_empty() && events.is_empty() && dropped == 0);
    let m = ts3_obs::metrics_snapshot();
    assert!(m.counters.is_empty() && m.gauges.is_empty() && m.hists.is_empty());
    let l = ts3_obs::labeled_snapshot();
    assert!(l.counters.is_empty() && l.gauges.is_empty() && l.hists.is_empty());
    let (reqs, batches, tl_dropped) = ts3_obs::timeline_snapshot();
    assert!(reqs.is_empty() && batches.is_empty() && tl_dropped == 0);
    assert!(ts3_obs::flight::to_json().is_none());
}
