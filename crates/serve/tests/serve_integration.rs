//! End-to-end contracts for the serving layer: responses are bitwise
//! identical to a locally-built same-seed plan, tenants are isolated,
//! malformed requests get typed errors, graceful shutdown answers every
//! queued request, batching actually coalesces under load, and the
//! simulation driver is bit-for-bit deterministic across runs and
//! worker-pool thread caps.

use std::rc::Rc;
use std::sync::mpsc::channel;
use ts3_baselines::{build_forecaster, BaselineConfig};
use ts3_serve::{
    run_online_sim, run_sim, CoalescerConfig, ForecastRequest, OnlineConfig, ServeError,
    ServerConfig, ServerHandle, SimConfig,
};
use ts3_tensor::par::set_max_threads;
use ts3_tensor::Tensor;
use ts3net_core::{CompiledPlan, ForecastModel, TS3NetConfig};

const LOOKBACK: usize = 24;
const HORIZON: usize = 12;
const CHANNELS: usize = 2;

fn cfgs() -> (BaselineConfig, TS3NetConfig) {
    let cfg = BaselineConfig::scaled(CHANNELS, LOOKBACK, HORIZON);
    let mut ts3 = TS3NetConfig::scaled(CHANNELS, LOOKBACK, HORIZON);
    ts3.lambda = 4;
    ts3.d_model = 4;
    ts3.d_hidden = 4;
    (cfg, ts3)
}

fn freeze(name: &str, seed: u64) -> CompiledPlan {
    let (cfg, ts3) = cfgs();
    let model: Rc<dyn ForecastModel> = Rc::from(build_forecaster(name, &cfg, &ts3, seed));
    let calib = Tensor::zeros(&[1, LOOKBACK, CHANNELS]);
    CompiledPlan::freeze(model, &calib).unwrap()
}

fn window(seed: u64) -> Tensor {
    let mut data = Vec::with_capacity(LOOKBACK * CHANNELS);
    for ti in 0..LOOKBACK {
        for ci in 0..CHANNELS {
            let tf = ti as f32 + seed as f32;
            data.push(0.02 * tf + (std::f32::consts::TAU * tf / 8.0 + 0.5 * ci as f32).sin());
        }
    }
    Tensor::from_vec(data, &[LOOKBACK, CHANNELS])
}

fn serve_cfg(max_batch: usize, max_hold: u64) -> ServerConfig {
    ServerConfig { coalescer: CoalescerConfig { max_batch, max_hold } }
}

#[test]
fn response_is_bitwise_identical_to_a_locally_built_plan() {
    let server = ServerHandle::start(serve_cfg(8, 0), || vec![freeze("DLinear", 7)]);
    let reference = freeze("DLinear", 7);
    let (tx, rx) = channel();
    for i in 0..3u64 {
        let w = window(i);
        server
            .submit(
                ForecastRequest { tenant: 0, input: w.clone(), submitted: i, deadline: i + 10 },
                &tx,
            )
            .unwrap();
        server.step(i).unwrap(); // max_hold = 0 -> executes immediately
        let resp = rx.recv().unwrap();
        let got = resp.result.unwrap();
        let want = reference
            .run(&w.reshape(&[1, LOOKBACK, CHANNELS]))
            .unwrap()
            .reshape(&[HORIZON, CHANNELS]);
        assert_eq!(got.shape(), want.shape());
        assert_eq!(got.as_slice(), want.as_slice(), "request {i}: served != local plan");
    }
    server.shutdown(3).unwrap();
}

#[test]
fn tenants_are_isolated_and_share_one_executor() {
    let server = ServerHandle::start(serve_cfg(8, 0), || {
        vec![freeze("TS3Net", 7), freeze("DLinear", 7)]
    });
    let (ts3_ref, dlinear_ref) = (freeze("TS3Net", 7), freeze("DLinear", 7));
    let w = window(5);
    let (tx_a, rx_a) = channel();
    let (tx_b, rx_b) = channel();
    server
        .submit(
            ForecastRequest { tenant: 0, input: w.clone(), submitted: 0, deadline: 10 },
            &tx_a,
        )
        .unwrap();
    server
        .submit(
            ForecastRequest { tenant: 1, input: w.clone(), submitted: 0, deadline: 10 },
            &tx_b,
        )
        .unwrap();
    server.step(0).unwrap();
    let batched = w.reshape(&[1, LOOKBACK, CHANNELS]);
    let got_a = rx_a.recv().unwrap().result.unwrap();
    let got_b = rx_b.recv().unwrap().result.unwrap();
    assert_eq!(
        got_a.as_slice(),
        ts3_ref.run(&batched).unwrap().as_slice(),
        "tenant 0 must answer with the TS3Net plan"
    );
    assert_eq!(
        got_b.as_slice(),
        dlinear_ref.run(&batched).unwrap().as_slice(),
        "tenant 1 must answer with the DLinear plan"
    );
    assert_ne!(got_a.as_slice(), got_b.as_slice(), "the two models genuinely differ");
    let stats = server.shutdown(1).unwrap();
    assert_eq!(stats.completed, 2);
    assert_eq!(stats.batches, 2, "one plan execution per tenant");
}

#[test]
fn malformed_requests_get_typed_errors_immediately() {
    let server = ServerHandle::start(serve_cfg(8, 5), || vec![freeze("DLinear", 7)]);
    let (tx, rx) = channel();
    server
        .submit(
            ForecastRequest { tenant: 3, input: window(0), submitted: 0, deadline: 10 },
            &tx,
        )
        .unwrap();
    match rx.recv().unwrap().result {
        Err(ServeError::UnknownTenant { tenant: 3, tenants: 1 }) => {}
        other => panic!("expected UnknownTenant, got {other:?}"),
    }
    server
        .submit(
            ForecastRequest {
                tenant: 0,
                input: Tensor::zeros(&[LOOKBACK, CHANNELS + 1]),
                submitted: 0,
                deadline: 10,
            },
            &tx,
        )
        .unwrap();
    match rx.recv().unwrap().result {
        Err(ServeError::BadShape { expected, got }) => {
            assert_eq!(expected, [LOOKBACK, CHANNELS]);
            assert_eq!(got, vec![LOOKBACK, CHANNELS + 1]);
        }
        other => panic!("expected BadShape, got {other:?}"),
    }
    let stats = server.shutdown(0).unwrap();
    assert_eq!(stats.failed, 2);
    assert_eq!(stats.completed, 0);
}

#[test]
fn graceful_shutdown_answers_every_queued_request() {
    // Huge hold + batch thresholds: nothing becomes due on its own, so
    // only the shutdown drain can answer.
    let server = ServerHandle::start(serve_cfg(64, 1_000), || vec![freeze("DLinear", 7)]);
    let (tx, rx) = channel();
    for i in 0..5u64 {
        server
            .submit(
                ForecastRequest { tenant: 0, input: window(i), submitted: 0, deadline: 2_000 },
                &tx,
            )
            .unwrap();
    }
    let report = server.step(0).unwrap();
    assert_eq!(report.completed, 0, "policy holds everything");
    assert_eq!(report.still_pending, 5);
    let stats = server.shutdown(1).unwrap();
    assert_eq!(stats.completed, 5, "drain answers all pending requests");
    let mut replies = 0;
    while let Ok(resp) = rx.try_recv() {
        assert!(resp.result.is_ok());
        assert_eq!(resp.batched_with, 5, "drain executed one batch of 5");
        replies += 1;
    }
    assert_eq!(replies, 5);
}

#[test]
fn coalescer_batches_under_load_and_batch_results_match_singles() {
    let server = ServerHandle::start(serve_cfg(8, 2), || vec![freeze("DLinear", 7)]);
    let reference = freeze("DLinear", 7);
    let (tx, rx) = channel();
    let windows: Vec<Tensor> = (0..8).map(|i| window(i as u64)).collect();
    for w in &windows {
        server
            .submit(
                ForecastRequest { tenant: 0, input: w.clone(), submitted: 0, deadline: 20 },
                &tx,
            )
            .unwrap();
    }
    let report = server.step(0).unwrap();
    assert_eq!(report.batches, 1, "a full batch flushes in one execution");
    assert_eq!(report.completed, 8);
    let mut responses: Vec<_> = (0..8).map(|_| rx.recv().unwrap()).collect();
    responses.sort_by_key(|r| r.submitted);
    for (w, resp) in windows.iter().zip(&responses) {
        assert_eq!(resp.batched_with, 8);
        let got = resp.result.as_ref().unwrap();
        let want = reference
            .run(&w.reshape(&[1, LOOKBACK, CHANNELS]))
            .unwrap()
            .reshape(&[HORIZON, CHANNELS]);
        assert_eq!(
            got.as_slice(),
            want.as_slice(),
            "a batched forecast must equal the same window served alone"
        );
    }
    server.shutdown(1).unwrap();
}

#[test]
fn deadline_exactly_on_the_flush_tick_is_not_a_miss() {
    // Urgency fires when waiting one more tick would miss the deadline
    // (`deadline <= now + 1`); the flush then completes at `now`, one
    // tick *before* the deadline. Walk the boundary explicitly.
    let server = ServerHandle::start(serve_cfg(64, 1_000), || vec![freeze("DLinear", 7)]);
    let (tx, rx) = channel();
    // deadline = submit + 2: not urgent at tick 0, urgent at tick 1.
    server
        .submit(ForecastRequest { tenant: 0, input: window(1), submitted: 0, deadline: 2 }, &tx)
        .unwrap();
    let held = server.step(0).unwrap();
    assert_eq!(held.completed, 0, "deadline 2 is still 2 ticks out at tick 0");
    assert_eq!(held.still_pending, 1);
    let flushed = server.step(1).unwrap();
    assert_eq!(flushed.completed, 1, "tick 1 is the last tick that can make deadline 2");
    let resp = rx.recv().unwrap();
    assert!(resp.result.is_ok());
    assert_eq!(resp.completed, 1);
    assert_eq!(resp.completed + 1, 2, "flush tick sits exactly one tick before the deadline");
    assert!(!resp.deadline_missed, "completing on the flush tick meets the deadline");
    // deadline = submit + 1: urgent immediately, same-tick execution.
    server
        .submit(ForecastRequest { tenant: 0, input: window(2), submitted: 5, deadline: 6 }, &tx)
        .unwrap();
    let now = server.step(5).unwrap();
    assert_eq!(now.completed, 1, "deadline == now + 1 flushes on the submit tick");
    let resp = rx.recv().unwrap();
    assert_eq!(resp.completed, 5);
    assert!(!resp.deadline_missed);
    let stats = server.shutdown(6).unwrap();
    assert_eq!(stats.deadline_misses, 0);
}

#[test]
fn zero_max_hold_flushes_every_step_without_coalescing_loss() {
    // max_hold = 0: `now - submitted >= 0` always holds, so every step
    // flushes whatever is queued — still as one batch, not singles.
    let server = ServerHandle::start(serve_cfg(8, 0), || vec![freeze("DLinear", 7)]);
    let reference = freeze("DLinear", 7);
    let (tx, rx) = channel();
    let windows: Vec<Tensor> = (0..3).map(|i| window(40 + i)).collect();
    for w in &windows {
        server
            .submit(
                ForecastRequest { tenant: 0, input: w.clone(), submitted: 0, deadline: 1_000 },
                &tx,
            )
            .unwrap();
    }
    let report = server.step(0).unwrap();
    assert_eq!(report.batches, 1, "zero hold still coalesces what is already queued");
    assert_eq!(report.completed, 3);
    let mut responses: Vec<_> = (0..3).map(|_| rx.recv().unwrap()).collect();
    responses.sort_by_key(|r| r.submitted);
    for (w, resp) in windows.iter().zip(&responses) {
        assert_eq!(resp.completed, 0, "zero hold answers on the submit tick");
        assert_eq!(resp.batched_with, 3);
        let want = reference
            .run(&w.reshape(&[1, LOOKBACK, CHANNELS]))
            .unwrap()
            .reshape(&[HORIZON, CHANNELS]);
        assert_eq!(resp.result.as_ref().unwrap().as_slice(), want.as_slice());
    }
    // An empty step under zero hold is a no-op, not a panic.
    let idle = server.step(1).unwrap();
    assert_eq!(idle.batches, 0);
    assert_eq!(idle.completed, 0);
    server.shutdown(2).unwrap();
}

#[test]
fn shutdown_races_a_just_enqueued_request_and_still_answers_it() {
    // Submit and immediately shut down with no intervening step: the
    // executor's shutdown drain must pick up the racing submission and
    // answer it rather than dropping the reply channel.
    for _ in 0..5 {
        let server = ServerHandle::start(serve_cfg(64, 1_000), || vec![freeze("DLinear", 7)]);
        let (tx, rx) = channel();
        server
            .submit(
                ForecastRequest { tenant: 0, input: window(9), submitted: 0, deadline: 1_000 },
                &tx,
            )
            .unwrap();
        let stats = server.shutdown(0).unwrap();
        assert_eq!(stats.requests, 1, "racing submit must be accepted by the drain");
        assert_eq!(stats.completed, 1, "racing submit must be answered, not dropped");
        let resp = rx.recv().expect("reply channel must hold the drained response");
        assert!(resp.result.is_ok());
        assert_eq!(resp.batched_with, 1);
    }
}

#[test]
fn online_sim_streams_samples_pulses_and_forecasts_deterministically() {
    let cfg = OnlineConfig {
        n_streams: 4,
        ticks: 60,
        seed: 123,
        deadline_slack: 4,
        tenants: vec![[LOOKBACK, CHANNELS], [LOOKBACK, CHANNELS]],
        hop: 4,
        lambda: 4,
        server: serve_cfg(4, 2),
    };
    let builder = || vec![freeze("TS3Net", 7), freeze("DLinear", 7)];
    set_max_threads(1);
    let a = run_online_sim(&cfg, builder);
    let b = run_online_sim(&cfg, builder);
    assert_eq!(a, b, "same config, same thread cap -> identical online report");
    set_max_threads(4);
    let c = run_online_sim(&cfg, builder);
    set_max_threads(1);
    assert_eq!(a, c, "worker-pool thread cap must not change the online report");
    // Workload shape: every stream appends every tick; pulses start
    // after one full window and recur every `hop` samples.
    assert_eq!(a.samples, cfg.ticks * cfg.n_streams as u64);
    let per_stream_pulses = (cfg.ticks - LOOKBACK as u64) / cfg.hop as u64 + 1;
    assert_eq!(a.pulses, per_stream_pulses * cfg.n_streams as u64);
    assert!(a.forecasts > 0, "pulses must reach the plans");
    assert_eq!(a.forecasts as usize, a.latencies_ticks.len());
    assert_eq!(a.stats.failed, 0, "streaming windows always match plan geometry");
    assert!(
        a.forecasts + a.pulses_skipped <= a.pulses,
        "every pulse either submits or is skipped in flight"
    );
}

#[test]
fn online_forecasts_are_bitwise_identical_to_feeding_the_plan_directly() {
    // One stream, generous slack and zero hold: each pulse's forecast
    // must equal running the reference plan on the pulse's own window.
    // Rebuild the same deterministic stream locally to get the windows.
    use ts3_rng::{Rng, SeedableRng};
    use ts3_signal::decompose::TripleConfig;
    use ts3_stream::{PulsedTriple, StreamConfig};

    let cfg = OnlineConfig {
        n_streams: 1,
        ticks: 40,
        seed: 7,
        deadline_slack: 8,
        tenants: vec![[LOOKBACK, CHANNELS]],
        hop: 8,
        lambda: 4,
        server: serve_cfg(1, 0),
    };
    let report = run_online_sim(&cfg, || vec![freeze("DLinear", 3)]);
    assert!(report.forecasts > 0);
    // The online driver submits at most one request per stream at a
    // time (closed loop), so with batch cap 1 every forecast rode alone
    // and deterministically.
    assert!(report.batch_sizes.iter().all(|&b| b == 1));
    // Reproduce the first pulse's window locally and check the served
    // path against a locally-built plan, bit for bit.
    let reference = freeze("DLinear", 3);
    let mut stream = PulsedTriple::new(StreamConfig {
        window: LOOKBACK,
        channels: CHANNELS,
        hop: cfg.hop,
        triple: TripleConfig { lambda: cfg.lambda, ..Default::default() },
    });
    let mut rng = ts3_rng::rngs::StdRng::seed_from_u64(cfg.seed);
    let mut first_emit = None;
    for now in 0..cfg.ticks {
        let row: Vec<f32> = (0..CHANNELS)
            .map(|ch| {
                let ti = now as f32;
                let noise: f32 = rng.gen::<f32>() - 0.5;
                0.02 * ti
                    + (std::f32::consts::TAU * ti / 8.0 + ch as f32).sin()
                    + 0.3 * (std::f32::consts::TAU * ti / 24.0).cos()
                    + 0.1 * noise
            })
            .collect();
        if let Some(e) = stream.push(&row) {
            first_emit = Some(e);
            break;
        }
    }
    let emit = first_emit.expect("stream warms up within the run");
    let served = {
        let server = ServerHandle::start(serve_cfg(1, 0), || vec![freeze("DLinear", 3)]);
        let (tx, rx) = channel();
        server
            .submit(
                ForecastRequest {
                    tenant: 0,
                    input: emit.window_tensor(LOOKBACK, CHANNELS),
                    submitted: 0,
                    deadline: 8,
                },
                &tx,
            )
            .unwrap();
        server.step(0).unwrap();
        let resp = rx.recv().unwrap();
        server.shutdown(1).unwrap();
        resp.result.unwrap()
    };
    let want = reference
        .run(&emit.window_tensor(LOOKBACK, CHANNELS).reshape(&[1, LOOKBACK, CHANNELS]))
        .unwrap()
        .reshape(&[HORIZON, CHANNELS]);
    assert_eq!(served.as_slice(), want.as_slice(), "served pulse != local plan on same window");
}

#[test]
fn simulation_is_deterministic_across_runs_and_thread_caps() {
    let sim = SimConfig {
        n_clients: 8,
        ticks: 12,
        seed: 99,
        deadline_slack: 4,
        tenants: vec![[LOOKBACK, CHANNELS], [LOOKBACK, CHANNELS]],
        server: serve_cfg(4, 2),
        stall: None,
    };
    let builder = || vec![freeze("TS3Net", 7), freeze("DLinear", 7)];
    set_max_threads(1);
    let a = run_sim(&sim, builder);
    let b = run_sim(&sim, builder);
    assert_eq!(a, b, "same config, same thread cap -> identical report");
    set_max_threads(4);
    let c = run_sim(&sim, builder);
    set_max_threads(1);
    assert_eq!(a, c, "worker-pool thread cap must not change the report");
    assert!(a.forecasts > 0);
    assert_eq!(a.forecasts as usize, a.latencies_ticks.len());
    assert!(
        a.batch_sizes.iter().any(|&b| b > 1),
        "8 clients on 2 tenants must produce at least one coalesced batch"
    );
    assert_eq!(a.stats.failed, 0);
}
