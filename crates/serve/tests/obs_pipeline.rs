//! End-to-end contracts for the serving telemetry pipeline (ts3-obs
//! v2): tracing must be a pure observer (traced and untraced runs
//! produce identical reports), every dump — plain metrics, labeled
//! series, exposition text, timeline digest — must be invariant to the
//! worker-pool thread cap, and an injected outage must trip the flight
//! recorder's SLO trigger.
//!
//! This is its own integration-test binary so it owns the
//! process-global obs registries and thread-cap state; tests serialise
//! on a mutex because all of that state is shared.

use std::rc::Rc;
use std::sync::Mutex;
use ts3_baselines::{build_forecaster, BaselineConfig};
use ts3_serve::{
    run_online_sim, run_sim, CoalescerConfig, OnlineConfig, ServerConfig, SimConfig,
};
use ts3_tensor::par::set_max_threads;
use ts3_tensor::Tensor;
use ts3net_core::{CompiledPlan, ForecastModel, TS3NetConfig};

const LOOKBACK: usize = 24;
const HORIZON: usize = 12;
const CHANNELS: usize = 2;

static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn freeze(name: &str, seed: u64) -> CompiledPlan {
    let cfg = BaselineConfig::scaled(CHANNELS, LOOKBACK, HORIZON);
    let mut ts3 = TS3NetConfig::scaled(CHANNELS, LOOKBACK, HORIZON);
    ts3.lambda = 4;
    ts3.d_model = 4;
    ts3.d_hidden = 4;
    let model: Rc<dyn ForecastModel> = Rc::from(build_forecaster(name, &cfg, &ts3, seed));
    let calib = Tensor::zeros(&[1, LOOKBACK, CHANNELS]);
    CompiledPlan::freeze(model, &calib).unwrap()
}

fn builder() -> Vec<CompiledPlan> {
    vec![freeze("TS3Net", 7), freeze("DLinear", 7)]
}

fn sim_cfg(stall: Option<(u64, u64)>) -> SimConfig {
    SimConfig {
        n_clients: 6,
        ticks: 24,
        seed: 99,
        deadline_slack: 3,
        tenants: vec![[LOOKBACK, CHANNELS], [LOOKBACK, CHANNELS]],
        server: ServerConfig { coalescer: CoalescerConfig { max_batch: 4, max_hold: 2 } },
        stall,
    }
}

fn online_cfg() -> OnlineConfig {
    OnlineConfig {
        n_streams: 4,
        ticks: 72,
        seed: 7,
        deadline_slack: 4,
        tenants: vec![[LOOKBACK, CHANNELS], [LOOKBACK, CHANNELS]],
        hop: 4,
        lambda: 4,
        server: ServerConfig { coalescer: CoalescerConfig { max_batch: 4, max_hold: 2 } },
    }
}

/// The exposition text minus scheduling series: `.sched.` counters
/// (sanitized to `_sched_`) legitimately vary with the thread cap and
/// process history; everything else must not.
fn exposition_sans_sched() -> String {
    ts3_obs::expo::render()
        .lines()
        .filter(|l| !l.contains("_sched_"))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Tracing must observe, never perturb: the same simulation with the
/// collector off and on yields identical reports (forecast counts,
/// latencies, batch shapes, server stats).
#[test]
fn traced_run_report_equals_untraced_run_report() {
    let _g = lock();
    set_max_threads(1);
    ts3_obs::set_level(0);
    ts3_obs::reset();
    let untraced = run_sim(&sim_cfg(None), builder);

    ts3_obs::set_level(1);
    ts3_obs::reset();
    let traced = run_sim(&sim_cfg(None), builder);
    ts3_obs::set_level(0);
    ts3_obs::reset();

    assert_eq!(untraced, traced, "enabling TS3_TRACE must not change the simulation");
    assert!(untraced.forecasts > 0);
}

/// Every metric the online mode records — plain counters, labeled
/// per-tenant series, histograms, gauges — must dump identically at
/// 1 and 4 worker threads (modulo `.sched.` scheduling counters).
#[test]
fn online_metrics_dump_is_thread_cap_invariant() {
    let _g = lock();
    ts3_obs::set_level(1);

    set_max_threads(1);
    ts3_obs::reset();
    let report_1 = run_online_sim(&online_cfg(), builder);
    let expo_1 = exposition_sans_sched();

    set_max_threads(4);
    ts3_obs::reset();
    let report_4 = run_online_sim(&online_cfg(), builder);
    let expo_4 = exposition_sans_sched();

    set_max_threads(1);
    ts3_obs::set_level(0);
    ts3_obs::reset();

    assert_eq!(report_1, report_4, "online report differs across thread caps");
    assert!(
        expo_1.contains("serve_requests{tenant=\"0\"}"),
        "labeled per-tenant series missing from exposition:\n{expo_1}"
    );
    assert!(expo_1.contains("serve_coalesce_hold"), "coalescer hold histogram missing");
    assert!(expo_1.contains("serve_queue_depth"), "queue depth gauge missing");
    assert_eq!(expo_1, expo_4, "metrics dump differs between 1 and 4 threads");
}

/// The timeline's deterministic digest (tick-valued request and batch
/// records, ns excluded) is a pure function of the simulated work.
#[test]
fn timeline_digest_is_thread_cap_invariant() {
    let _g = lock();
    ts3_obs::set_level(1);

    set_max_threads(1);
    ts3_obs::reset();
    let _ = run_online_sim(&online_cfg(), builder);
    let digest_1 = ts3_obs::deterministic_digest();

    set_max_threads(4);
    ts3_obs::reset();
    let _ = run_online_sim(&online_cfg(), builder);
    let digest_4 = ts3_obs::deterministic_digest();

    set_max_threads(1);
    ts3_obs::set_level(0);
    ts3_obs::reset();

    assert!(digest_1.contains("r tenant="), "digest recorded no requests:\n{digest_1}");
    assert!(digest_1.contains("b tenant="), "digest recorded no batches");
    assert_eq!(digest_1, digest_4, "timeline digest differs across thread caps");
}

/// An injected outage long enough to strand every client past its
/// deadline must latch the flight recorder's miss-ratio trigger, and
/// the postmortem must report the window as it fired.
#[test]
fn stall_burst_trips_the_flight_recorder() {
    let _g = lock();
    set_max_threads(1);
    ts3_obs::set_level(1);
    ts3_obs::reset();
    ts3_obs::flight::configure(ts3_obs::flight::FlightConfig {
        window: 6,
        min_window: 6,
        miss_threshold: 0.5,
        ..Default::default()
    });

    // Stall ticks [8, 16): 6 clients queue with slack-3 deadlines that
    // all expire mid-stall, so the resume tick answers 6 straight
    // misses into a 6-wide window.
    let report = run_sim(&sim_cfg(Some((8, 8))), builder);
    assert!(report.stats.deadline_misses >= 6, "stall produced too few misses: {report:?}");
    assert!(ts3_obs::flight::triggered(), "miss burst did not latch the SLO trigger");

    let doc = ts3_obs::flight::to_json().expect("armed recorder renders a postmortem");
    let trigger = doc.get("trigger").unwrap();
    assert!(
        trigger.get("fired_at_tick").unwrap().as_f64().is_some(),
        "postmortem lacks the fire tick"
    );
    let ratio = trigger.get("window_miss_ratio").unwrap().as_f64().unwrap();
    assert!(ratio >= 0.5, "frozen trigger window below threshold: {ratio}");
    assert!(
        !doc.get("events").unwrap().as_array().unwrap().is_empty(),
        "postmortem event ring is empty"
    );

    ts3_obs::flight::reset_flight();
    ts3_obs::set_level(0);
    ts3_obs::reset();
}
