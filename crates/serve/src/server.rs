//! The multi-tenant forecast server.
//!
//! One **executor thread** owns every tenant's [`CompiledPlan`] (plans
//! are `!Send` — `Rc`-based model graphs — so they are *built on* the
//! executor thread by a `Send` builder closure and never leave it). All
//! tenants therefore share the process-wide FFT plan cache and the
//! executor thread's plan memo: two tenants with the same window length
//! reuse the same FFT tables.
//!
//! Clients talk to the executor over an mpsc channel:
//!
//! * [`ServerHandle::submit`] enqueues a `[T, C]` window for a tenant
//!   with a deadline tick; the reply arrives on the caller's channel.
//! * [`ServerHandle::step`] is the scheduling barrier: at tick `now` the
//!   executor drains previously-submitted requests into the
//!   [`Coalescer`], executes every batch
//!   that is due (stacked into one `[N, T, C]` plan run per tenant), and
//!   replies to each request. Time only moves when the driver steps, so
//!   batching decisions are a pure function of the submitted load — the
//!   deterministic simulation and the latency benchmark drive the same
//!   code path.
//! * [`ServerHandle::shutdown`] drains everything still queued (no
//!   request is dropped), returns final counters and joins the thread.
//!   Dropping the handle performs the same graceful shutdown.

use crate::coalescer::{Coalescer, CoalescerConfig, Pending};
use std::fmt;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;
use ts3_tensor::Tensor;
use ts3net_core::CompiledPlan;

/// A single forecast request: one lookback window for one tenant.
#[derive(Debug)]
pub struct ForecastRequest {
    /// Tenant index (dense, `0..n_tenants`).
    pub tenant: usize,
    /// The window, shaped `[T, C]` for the tenant's plan geometry.
    pub input: Tensor,
    /// Tick at which the client submitted.
    pub submitted: u64,
    /// Tick by which the client wants the forecast.
    pub deadline: u64,
}

/// What went wrong with a request or a server call.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// Tenant index out of range.
    UnknownTenant {
        /// The offending index.
        tenant: usize,
        /// How many tenants the server hosts.
        tenants: usize,
    },
    /// Input window does not match the tenant plan's `[T, C]` geometry.
    BadShape {
        /// Expected `[lookback, c_in]`.
        expected: [usize; 2],
        /// The submitted shape.
        got: Vec<usize>,
    },
    /// Plan execution failed (carries the `PlanError` rendering).
    Plan(String),
    /// The server thread is gone (already shut down or panicked).
    Closed,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownTenant { tenant, tenants } => {
                write!(f, "unknown tenant {tenant} (server hosts {tenants})")
            }
            ServeError::BadShape { expected, got } => write!(
                f,
                "expected a [{}, {}] window, got {:?}",
                expected[0], expected[1], got
            ),
            ServeError::Plan(msg) => write!(f, "plan execution failed: {msg}"),
            ServeError::Closed => write!(f, "server is shut down"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Reply to one [`ForecastRequest`].
#[derive(Debug)]
pub struct ForecastResponse {
    /// The `[H, C]` forecast, or why it could not be produced.
    pub result: Result<Tensor, ServeError>,
    /// Tick the request was submitted at (copied from the request).
    pub submitted: u64,
    /// Tick the executing step ran at.
    pub completed: u64,
    /// How many requests shared the plan execution (1 = ran alone).
    pub batched_with: usize,
    /// True if `completed > deadline`.
    pub deadline_missed: bool,
}

/// What one [`ServerHandle::step`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StepReport {
    /// Plan executions performed.
    pub batches: usize,
    /// Requests answered.
    pub completed: usize,
    /// Requests still queued for a later step.
    pub still_pending: usize,
}

/// Lifetime counters, returned by [`ServerHandle::shutdown`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Requests accepted.
    pub requests: u64,
    /// Requests answered successfully.
    pub completed: u64,
    /// Requests answered with an error.
    pub failed: u64,
    /// Plan executions.
    pub batches: u64,
    /// Responses completed after their deadline tick.
    pub deadline_misses: u64,
    /// Largest batch a single plan execution carried.
    pub max_batch_size: usize,
}

/// Server configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServerConfig {
    /// Batching policy.
    pub coalescer: CoalescerConfig,
}

enum Msg {
    Submit(ForecastRequest, Sender<ForecastResponse>),
    Step { now: u64, done: Sender<StepReport> },
    Shutdown { now: u64, done: Sender<ServerStats> },
}

/// Client-side handle to a running server. Cheap to use from one driver
/// thread; submissions and steps sent from the same thread are processed
/// in submission order.
pub struct ServerHandle {
    tx: Sender<Msg>,
    join: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// Start a server. `builder` runs **on the executor thread** and
    /// returns one frozen plan per tenant (tenant index = position).
    pub fn start(
        cfg: ServerConfig,
        builder: impl FnOnce() -> Vec<CompiledPlan> + Send + 'static,
    ) -> ServerHandle {
        let (tx, rx) = channel::<Msg>();
        let join = std::thread::Builder::new()
            .name("ts3-serve-executor".to_string())
            .spawn(move || executor(rx, cfg, builder))
            // ts3-lint: allow(no-unwrap-in-lib) thread spawn fails only on resource exhaustion at process start
            .expect("failed to spawn the ts3-serve executor thread");
        ServerHandle { tx, join: Some(join) }
    }

    /// Enqueue a request; the reply will arrive on `reply`.
    pub fn submit(
        &self,
        req: ForecastRequest,
        reply: &Sender<ForecastResponse>,
    ) -> Result<(), ServeError> {
        self.tx
            .send(Msg::Submit(req, reply.clone()))
            .map_err(|_| ServeError::Closed)
    }

    /// Run scheduling at tick `now` and block until the executor has
    /// finished every batch due at that tick (barrier).
    pub fn step(&self, now: u64) -> Result<StepReport, ServeError> {
        let (done_tx, done_rx) = channel();
        self.tx
            .send(Msg::Step { now, done: done_tx })
            .map_err(|_| ServeError::Closed)?;
        done_rx.recv().map_err(|_| ServeError::Closed)
    }

    /// Graceful shutdown at tick `now`: every queued request is executed
    /// and answered, the final counters are returned, and the executor
    /// thread is joined.
    pub fn shutdown(mut self, now: u64) -> Result<ServerStats, ServeError> {
        let stats = self.shutdown_inner(now);
        stats.ok_or(ServeError::Closed)
    }

    fn shutdown_inner(&mut self, now: u64) -> Option<ServerStats> {
        let (done_tx, done_rx) = channel();
        let sent = self.tx.send(Msg::Shutdown { now, done: done_tx }).is_ok();
        let stats = if sent { done_rx.recv().ok() } else { None };
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
        stats
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.join.is_some() {
            let _ = self.shutdown_inner(u64::MAX);
        }
    }
}

/// What rides through the coalescer for one accepted request: the
/// window, its deadline, the timeline identity minted at accept, and
/// the reply channel.
struct Queued {
    input: Tensor,
    deadline: u64,
    ctx: ts3_obs::RequestCtx,
    reply: Sender<ForecastResponse>,
}

struct Executor {
    plans: Vec<CompiledPlan>,
    coalescer: Coalescer<Queued>,
    stats: ServerStats,
}

/// Run `f` with the tenant's decimal label, only when tracing is
/// enabled — labeled call sites pay no formatting/allocation on the
/// disabled path.
pub(crate) fn with_tenant_label(tenant: usize, f: impl FnOnce(&[(&'static str, &str)])) {
    if ts3_obs::enabled() {
        let t = tenant.to_string();
        f(&[("tenant", t.as_str())]);
    }
}

fn executor(
    rx: Receiver<Msg>,
    cfg: ServerConfig,
    builder: impl FnOnce() -> Vec<CompiledPlan>,
) {
    let plans = builder();
    let mut ex = Executor {
        coalescer: Coalescer::new(plans.len(), cfg.coalescer),
        plans,
        stats: ServerStats::default(),
    };
    while let Ok(msg) = rx.recv() {
        match msg {
            Msg::Submit(req, reply) => ex.accept(req, reply),
            Msg::Step { now, done } => {
                let report = ex.run_due(now, false);
                let _ = done.send(report);
            }
            Msg::Shutdown { now, done } => {
                // Drain submissions that raced the shutdown message, then
                // flush every queue so no request goes unanswered.
                while let Ok(msg) = rx.try_recv() {
                    match msg {
                        Msg::Submit(req, reply) => ex.accept(req, reply),
                        Msg::Step { now, done } => {
                            let report = ex.run_due(now, false);
                            let _ = done.send(report);
                        }
                        Msg::Shutdown { .. } => {}
                    }
                }
                ex.run_due(now, true);
                let _ = done.send(ex.stats);
                return;
            }
        }
    }
    // All senders dropped without an explicit shutdown: flush and exit.
    ex.run_due(u64::MAX, true);
}

impl Executor {
    fn accept(&mut self, req: ForecastRequest, reply: Sender<ForecastResponse>) {
        self.stats.requests += 1;
        ts3_obs::counter_add("serve.requests", 1);
        with_tenant_label(req.tenant, |labels| {
            ts3_obs::counter_add_l("serve.requests", labels, 1);
        });
        let err = if req.tenant >= self.plans.len() {
            Some(ServeError::UnknownTenant { tenant: req.tenant, tenants: self.plans.len() })
        } else {
            let geom = self.plans[req.tenant].geometry();
            if req.input.shape() != geom {
                Some(ServeError::BadShape { expected: geom, got: req.input.shape().to_vec() })
            } else {
                None
            }
        };
        if let Some(err) = err {
            self.stats.failed += 1;
            let _ = reply.send(ForecastResponse {
                result: Err(err),
                submitted: req.submitted,
                completed: req.submitted,
                batched_with: 0,
                deadline_missed: false,
            });
            return;
        }
        let ctx = ts3_obs::begin_request(req.tenant, req.submitted, req.deadline);
        self.coalescer.push(
            req.tenant,
            Pending::new(
                req.submitted,
                req.deadline,
                Queued { input: req.input, deadline: req.deadline, ctx, reply },
            ),
        );
    }

    fn run_due(&mut self, now: u64, drain: bool) -> StepReport {
        let batches =
            if drain { self.coalescer.drain_all(now) } else { self.coalescer.due(now) };
        let mut report = StepReport::default();
        for (tenant, batch) in batches {
            report.batches += 1;
            report.completed += batch.len();
            self.execute(tenant, batch, now);
        }
        report.still_pending = self.coalescer.pending();
        report
    }

    fn execute(&mut self, tenant: usize, batch: Vec<Pending<Queued>>, now: u64) {
        let plan = &self.plans[tenant];
        let [lookback, c_in] = plan.geometry();
        let n = batch.len();
        self.stats.batches += 1;
        self.stats.max_batch_size = self.stats.max_batch_size.max(n);
        ts3_obs::counter_add("serve.batches", 1);
        let mut span = ts3_obs::span("serve.batch");
        if span.active() {
            span.field("tenant", tenant);
            span.field("size", n);
            span.field("model", plan.name().to_string());
        }
        // Stack the windows into one [N, T, C] execution, timed as one
        // timeline batch — `CompiledPlan::run` files its per-stage
        // execute segments into this scope.
        let mut data = Vec::with_capacity(n * lookback * c_in);
        for p in &batch {
            data.extend_from_slice(p.payload.input.as_slice());
        }
        let stacked = Tensor::from_vec(data, &[n, lookback, c_in]);
        let batch_guard = ts3_obs::begin_batch(tenant, now, n);
        let batch_id = batch_guard.id();
        let outcome = plan.run(&stacked);
        drop(batch_guard);
        for (i, p) in batch.into_iter().enumerate() {
            let Queued { deadline, ctx, reply, .. } = p.payload;
            let result = match &outcome {
                Ok(y) => {
                    let h = y.shape()[1];
                    Ok(y.narrow(0, i, 1).reshape(&[h, c_in]))
                }
                Err(e) => Err(ServeError::Plan(e.to_string())),
            };
            if result.is_ok() {
                self.stats.completed += 1;
            } else {
                self.stats.failed += 1;
            }
            let deadline_missed = now > deadline;
            if deadline_missed {
                self.stats.deadline_misses += 1;
                ts3_obs::counter_add("serve.deadline_miss", 1);
            }
            with_tenant_label(tenant, |labels| {
                ts3_obs::observe_l(
                    "serve.latency_ticks",
                    labels,
                    now.saturating_sub(p.submitted) as f64,
                );
                if deadline_missed {
                    ts3_obs::counter_add_l("serve.deadline_miss", labels, 1);
                }
            });
            ts3_obs::mark_seen(ctx, p.seen.unwrap_or(now));
            ts3_obs::mark_flushed(ctx, now, batch_id, n);
            ts3_obs::mark_respond(ctx, now, deadline_missed);
            ts3_obs::flight::note_response(now, tenant, deadline_missed);
            let _ = reply.send(ForecastResponse {
                result,
                submitted: p.submitted,
                completed: now,
                batched_with: n,
                deadline_missed,
            });
        }
    }
}
