//! Serving-telemetry smoke driver: exercises the full `ts3-obs` v2
//! pipeline end to end and writes every artifact the observability
//! verify gate validates.
//!
//!   serve_obs [--smoke] [--out-dir DIR]
//!
//! Two deterministic lockstep phases share one traced process:
//!
//! 1. **Stalled request sim** — `ts3_serve::sim::run_sim` with an
//!    injected outage (`SimConfig::stall`): the server's scheduling
//!    step is skipped for a window of ticks while clients keep
//!    submitting, so the resume tick answers a burst of
//!    deadline-missed requests and the armed `ts3_obs::flight`
//!    recorder crosses its SLO miss-ratio threshold.
//! 2. **Online streaming sim** — `ts3_serve::online::run_online_sim`
//!    with a short hop, producing per-tenant labeled series and
//!    sliding-DFT period-drift alerts into the same registries.
//!
//! Artifacts (under `--out-dir`, default `results/`):
//!
//! * `serve_obs.timeline.json` — `ts3.timeline.v1` request timelines
//! * `serve_obs.flight.json`   — `ts3.flight.v1` postmortem (the stall
//!   **must** have fired the trigger; exit 1 otherwise)
//! * `serve_obs.prom`          — Prometheus text exposition. Everything
//!   in it is tick-valued, so two runs of this binary produce
//!   byte-identical files — the verify gate `cmp`s them.
//! * `serve_obs.folded`        — span self-time folded stacks
//!
//! Tracing is forced on (level 1) if `TS3_TRACE` did not already enable
//! it; `TS3_THREADS` is honoured like every other workspace binary.

use std::path::PathBuf;
use std::rc::Rc;
use ts3_baselines::{build_forecaster, BaselineConfig};
use ts3_serve::{
    run_online_sim, run_sim, write_exposition, write_flight_json, write_folded,
    write_timeline_json, OnlineConfig, ServerConfig, SimConfig,
};
use ts3_tensor::Tensor;
use ts3net_core::{CompiledPlan, ForecastModel, TS3NetConfig};

const LOOKBACK: usize = 24;
const HORIZON: usize = 12;
const CHANNELS: usize = 2;

fn build_plans() -> Vec<CompiledPlan> {
    let cfg = BaselineConfig::scaled(CHANNELS, LOOKBACK, HORIZON);
    let mut ts3 = TS3NetConfig::scaled(CHANNELS, LOOKBACK, HORIZON);
    ts3.lambda = 4;
    ts3.d_model = 4;
    ts3.d_hidden = 4;
    let calib = Tensor::zeros(&[1, LOOKBACK, CHANNELS]);
    ["TS3Net", "DLinear"]
        .into_iter()
        .map(|name| {
            let model: Rc<dyn ForecastModel> = Rc::from(build_forecaster(name, &cfg, &ts3, 7));
            CompiledPlan::freeze(model, &calib)
                .unwrap_or_else(|e| panic!("{name}: freeze failed: {e}"))
        })
        .collect()
}

fn main() {
    let mut smoke = false;
    let mut out_dir = PathBuf::from("results");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out-dir" => {
                out_dir = PathBuf::from(args.next().expect("--out-dir needs an argument"));
            }
            other => {
                eprintln!("usage: serve_obs [--smoke] [--out-dir DIR] (got {other})");
                std::process::exit(2);
            }
        }
    }
    if let Ok(threads) = std::env::var("TS3_THREADS") {
        if let Ok(n) = threads.parse::<usize>() {
            ts3_tensor::par::set_max_threads(n);
        }
    }
    if !ts3_obs::enabled() {
        ts3_obs::set_level(1);
    }
    std::fs::create_dir_all(&out_dir).expect("cannot create --out-dir");
    ts3_obs::reset();
    // Window sized to the outage burst: the resume tick answers all 8
    // stalled clients in one drain, so 8 consecutive misses saturate an
    // 8-wide rolling window regardless of pre-stall traffic.
    ts3_obs::flight::configure(ts3_obs::flight::FlightConfig {
        window: 8,
        min_window: 8,
        miss_threshold: 0.5,
        ..Default::default()
    });
    ts3_obs::flight::install_panic_hook();

    // Phase 1: request/response sim with an injected outage. Slack 3 and
    // a 10-tick stall guarantee the resume tick drains a burst of
    // already-expired deadlines.
    let ticks: u64 = if smoke { 40 } else { 120 };
    let sim = SimConfig {
        n_clients: 8,
        ticks,
        seed: 99,
        deadline_slack: 3,
        tenants: vec![[LOOKBACK, CHANNELS], [LOOKBACK, CHANNELS]],
        server: ServerConfig::default(),
        stall: Some((ticks / 3, 10)),
    };
    let sim_report = run_sim(&sim, build_plans);
    println!(
        "serve_obs: sim forecasts={} deadline_misses={} flight_triggered={}",
        sim_report.forecasts,
        sim_report.stats.deadline_misses,
        ts3_obs::flight::triggered()
    );

    // Phase 2: streaming workload into the same registries — labeled
    // per-tenant series plus sliding-DFT drift alerts.
    let online = OnlineConfig {
        n_streams: 6,
        ticks: if smoke { 96 } else { 240 },
        seed: 7,
        deadline_slack: 4,
        tenants: vec![[LOOKBACK, CHANNELS], [LOOKBACK, CHANNELS]],
        hop: 4,
        lambda: 4,
        server: ServerConfig::default(),
    };
    let online_report = run_online_sim(&online, build_plans);
    println!(
        "serve_obs: online pulses={} forecasts={} drift_alerts={}",
        online_report.pulses, online_report.forecasts, online_report.drift_alerts
    );

    let timeline = out_dir.join("serve_obs.timeline.json");
    write_timeline_json(&timeline).expect("cannot write timeline");
    println!("serve_obs: wrote {}", timeline.display());

    let prom = out_dir.join("serve_obs.prom");
    write_exposition(&prom).expect("cannot write exposition");
    println!("serve_obs: wrote {}", prom.display());

    let folded = out_dir.join("serve_obs.folded");
    write_folded(&folded).expect("cannot write folded stacks");
    println!("serve_obs: wrote {}", folded.display());

    if !ts3_obs::flight::triggered() {
        eprintln!("serve_obs: stall did not trip the flight recorder's SLO trigger");
        std::process::exit(1);
    }
    let flight = out_dir.join("serve_obs.flight.json");
    match write_flight_json(&flight).expect("cannot write flight postmortem") {
        Some(p) => println!("serve_obs: wrote {}", p.display()),
        None => {
            eprintln!("serve_obs: flight recorder armed but produced no postmortem");
            std::process::exit(1);
        }
    }
}
