//! Closed-loop serving latency benchmark.
//!
//!   serve_bench [--smoke] [--out-dir DIR]
//!
//! Runs the same lockstep loop as `ts3_serve::sim` against two tenants
//! (a small TS3Net and DLinear) at 1, 8 and 64 concurrent clients, but
//! measures **real nanoseconds** per forecast (submit -> reply) with
//! `Instant` — this binary is on the `ts3-lint` wallclock allowlist;
//! library code stays tick-based and deterministic.
//!
//! Emits `ts3.bench.v1` JSON (BENCH_serve_smoke.json in smoke mode,
//! BENCH_serve.json otherwise) with rows:
//!
//! * `serve_latency/c{N}`      — per-forecast latency (median gated)
//! * `serve_latency_p99/c{N}`  — tail latency
//! * `serve_rate/c{N}`         — mean ns per forecast (throughput⁻¹)
//!
//! compatible with the `bench_compare` regression gate, e.g.:
//!
//!   bench_compare results/BENCH_serve_smoke.json \
//!       target/serve-smoke/BENCH_serve_smoke.json --threshold 75

use std::path::PathBuf;
use std::rc::Rc;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::time::Instant;
use ts3_baselines::{build_forecaster, BaselineConfig};
use ts3_rng::rngs::StdRng;
use ts3_rng::{Rng, SeedableRng};
use ts3_serve::{
    summarize, write_bench_json, BenchRow, ForecastRequest, ForecastResponse, ServerConfig,
    ServerHandle,
};
use ts3_tensor::Tensor;
use ts3net_core::{CompiledPlan, ForecastModel, TS3NetConfig};

const CLIENT_COUNTS: [usize; 3] = [1, 8, 64];
const LOOKBACK: usize = 24;
const HORIZON: usize = 12;
const CHANNELS: usize = 2;

fn build_plans() -> Vec<CompiledPlan> {
    let cfg = BaselineConfig::scaled(CHANNELS, LOOKBACK, HORIZON);
    let mut ts3 = TS3NetConfig::scaled(CHANNELS, LOOKBACK, HORIZON);
    ts3.lambda = 4;
    ts3.d_model = 4;
    ts3.d_hidden = 4;
    let calib = Tensor::zeros(&[1, LOOKBACK, CHANNELS]);
    ["TS3Net", "DLinear"]
        .into_iter()
        .map(|name| {
            let model: Rc<dyn ForecastModel> = Rc::from(build_forecaster(name, &cfg, &ts3, 7));
            CompiledPlan::freeze(model, &calib)
                .unwrap_or_else(|e| panic!("{name}: freeze failed: {e}"))
        })
        .collect()
}

struct Client {
    tenant: usize,
    rng: StdRng,
    started: Option<Instant>,
    tx: Sender<ForecastResponse>,
    rx: Receiver<ForecastResponse>,
}

impl Client {
    fn window(&mut self) -> Tensor {
        let mut data = Vec::with_capacity(LOOKBACK * CHANNELS);
        for ti in 0..LOOKBACK {
            for ci in 0..CHANNELS {
                let phase = std::f32::consts::TAU * ti as f32 / 8.0 + ci as f32;
                let noise: f32 = self.rng.gen::<f32>() - 0.5;
                data.push(0.05 * ti as f32 + phase.sin() + 0.1 * noise);
            }
        }
        Tensor::from_vec(data, &[LOOKBACK, CHANNELS])
    }
}

struct RunResult {
    latencies_ns: Vec<u64>,
    total_ns: u64,
    forecasts: u64,
}

fn run_closed_loop(n_clients: usize, ticks: u64) -> RunResult {
    let server = ServerHandle::start(ServerConfig::default(), build_plans);
    let mut clients: Vec<Client> = (0..n_clients)
        .map(|i| {
            let (tx, rx) = channel();
            Client {
                tenant: i % 2,
                rng: StdRng::seed_from_u64(42 + i as u64),
                started: None,
                tx,
                rx,
            }
        })
        .collect();
    let mut out = RunResult { latencies_ns: Vec::new(), total_ns: 0, forecasts: 0 };
    // Untimed warm-up: first plan executions fault in code and buffers;
    // without this the c1 tail is dominated by one cold iteration.
    const WARMUP_TICKS: u64 = 6;
    let mut run_start = Instant::now();
    for now in 0..WARMUP_TICKS + ticks {
        if now == WARMUP_TICKS {
            out.latencies_ns.clear();
            out.forecasts = 0;
            run_start = Instant::now();
        }
        for client in clients.iter_mut() {
            if client.started.is_some() {
                continue;
            }
            let req = ForecastRequest {
                tenant: client.tenant,
                input: client.window(),
                submitted: now,
                deadline: now + 4,
            };
            let tx = client.tx.clone();
            if server.submit(req, &tx).is_ok() {
                client.started = Some(Instant::now());
            }
        }
        server.step(now).expect("executor thread died mid-benchmark");
        for client in clients.iter_mut() {
            while let Ok(resp) = client.rx.try_recv() {
                if let Some(start) = client.started.take() {
                    if resp.result.is_ok() {
                        out.latencies_ns.push(start.elapsed().as_nanos() as u64);
                        out.forecasts += 1;
                    }
                }
            }
        }
    }
    server.shutdown(WARMUP_TICKS + ticks).expect("graceful shutdown failed");
    for client in clients.iter_mut() {
        while let Ok(resp) = client.rx.try_recv() {
            if let Some(start) = client.started.take() {
                if resp.result.is_ok() {
                    out.latencies_ns.push(start.elapsed().as_nanos() as u64);
                    out.forecasts += 1;
                }
            }
        }
    }
    out.total_ns = run_start.elapsed().as_nanos() as u64;
    out
}

fn main() {
    let mut smoke = false;
    let mut out_dir = PathBuf::from("results");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out-dir" => {
                out_dir = PathBuf::from(
                    args.next().expect("--out-dir needs an argument"),
                );
            }
            other => {
                eprintln!("usage: serve_bench [--smoke] [--out-dir DIR] (got {other})");
                std::process::exit(2);
            }
        }
    }
    if let Ok(threads) = std::env::var("TS3_THREADS") {
        if let Ok(n) = threads.parse::<usize>() {
            ts3_tensor::par::set_max_threads(n);
        }
    }
    let ticks: u64 = if smoke { 30 } else { 300 };
    std::fs::create_dir_all(&out_dir).expect("cannot create --out-dir");

    let mut rows = Vec::new();
    println!("== serve_bench ({} ticks/run, 2 tenants: TS3Net + DLinear) ==", ticks);
    for n in CLIENT_COUNTS {
        let r = run_closed_loop(n, ticks);
        let s = summarize(&r.latencies_ns);
        let rate_ns = if r.forecasts > 0 { r.total_ns / r.forecasts } else { 0 };
        let shape = format!("c{n}");
        println!(
            "clients={n:<3} forecasts={:<6} p50={:>9} ns  p99={:>9} ns  {:>9} ns/forecast",
            r.forecasts, s.p50_ns, s.p99_ns, rate_ns
        );
        rows.push(BenchRow::from_summary("serve_latency", &shape, &s));
        rows.push(BenchRow::scalar("serve_latency_p99", &shape, s.p99_ns, r.forecasts));
        rows.push(BenchRow::scalar("serve_rate", &shape, rate_ns, r.forecasts));
    }

    let name = if smoke { "BENCH_serve_smoke.json" } else { "BENCH_serve.json" };
    let path = out_dir.join(name);
    write_bench_json(&path, &rows).expect("cannot write bench JSON");
    println!("serve_bench: wrote {}", path.display());
}
