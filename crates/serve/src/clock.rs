//! Virtual time for the serving layer.
//!
//! The `ts3-lint` `no-wallclock-or-entropy` contract bans `Instant::now`
//! from library code, and the serving layer is built to honour it: every
//! scheduling decision (coalescing holds, deadlines) is expressed in
//! abstract **ticks** supplied by the caller. The deterministic
//! simulation driver advances a [`VirtualClock`] in lockstep; the
//! `serve_bench` binary (on the lint's timing allowlist) maps ticks to
//! wall time only for *measurement*, never for scheduling.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonic tick source.
pub trait Clock {
    /// Current tick. Must be monotonically non-decreasing.
    fn now(&self) -> u64;
}

/// An explicitly-advanced clock: time moves only when the driver says so,
/// which is what makes the simulation bit-for-bit reproducible.
#[derive(Debug, Default)]
pub struct VirtualClock {
    ticks: AtomicU64,
}

impl VirtualClock {
    /// A clock at tick 0.
    pub fn new() -> VirtualClock {
        VirtualClock::default()
    }

    /// Advance by `n` ticks, returning the new time.
    pub fn advance(&self, n: u64) -> u64 {
        self.ticks.fetch_add(n, Ordering::Relaxed) + n
    }
}

impl Clock for VirtualClock {
    fn now(&self) -> u64 {
        self.ticks.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_and_advances() {
        let c = VirtualClock::new();
        assert_eq!(c.now(), 0);
        assert_eq!(c.advance(3), 3);
        assert_eq!(c.advance(2), 5);
        assert_eq!(c.now(), 5);
    }
}
