//! # ts3-serve — multi-tenant batching forecast server
//!
//! Serves frozen [`CompiledPlan`](ts3net_core::CompiledPlan)s behind a
//! request queue with **deadline-aware coalescing**: compatible requests
//! for the same tenant are stacked into one batched plan execution,
//! trading a bounded number of hold ticks for amortized throughput.
//!
//! Layout:
//!
//! * [`coalescer`] — the pure batching policy (flush on full batch,
//!   max-hold expiry, or imminent deadline). No threads, no clocks.
//! * [`server`] — one executor thread that owns every tenant's plan
//!   (plans are `!Send`, so they are built *on* that thread), drains an
//!   mpsc request queue, and executes due batches at each `step` tick.
//!   All tenants share the process-wide FFT plan cache.
//! * [`clock`] — virtual ticks. Library code never reads a wallclock
//!   (enforced by `ts3-lint`); only the `serve_bench` binary, on the
//!   lint allowlist, maps ticks to nanoseconds for measurement.
//! * [`sim`] — a deterministic single-threaded closed-loop load driver:
//!   same seed in, bit-identical [`SimReport`] out,
//!   regardless of worker-pool thread count.
//! * [`online`] — the streaming workload: per-stream
//!   `ts3_stream::PulsedTriple` state appending one sample per tick,
//!   pulses feeding the warm plans through the same coalescer, with a
//!   sliding-DFT period-drift monitor. Same determinism contract as
//!   [`sim`].
//! * [`report`] — nearest-rank latency percentiles, `ts3.bench.v1`
//!   emission compatible with the `bench_compare` regression gate, and
//!   the telemetry artifact writers (`ts3.timeline.v1` request
//!   timelines, `ts3.flight.v1` postmortems, Prometheus text
//!   exposition, folded stacks) used by the `serve_obs` binary.
//!
//! ## Observability
//!
//! The serving path is instrumented end to end through `ts3-obs` v2:
//! every accepted request mints a [`ts3_obs::RequestCtx`] and is
//! tracked queue-wait → coalesce-hold → batched per-stage execute →
//! respond; the coalescer reports `serve.queue_depth` /
//! `serve.coalesce_hold`; the executor records per-tenant labeled
//! `serve.requests` / `serve.latency_ticks` / `serve.deadline_miss`
//! series and feeds every response (plus the online mode's period-drift
//! alerts) to the `ts3_obs::flight` recorder. All instrumentation is
//! tick-valued where determinism matters, so traced and untraced runs
//! produce byte-identical reports at any thread cap.
//!
//! ## Quickstart
//!
//! ```
//! use std::sync::mpsc::channel;
//! use std::rc::Rc;
//! use ts3_serve::{ForecastRequest, ServerConfig, ServerHandle};
//! use ts3net_core::{CompiledPlan, ForecastModel, TS3NetConfig};
//! use ts3_baselines::{build_forecaster, BaselineConfig};
//! use ts3_tensor::Tensor;
//!
//! // Plans are built on the executor thread by a Send closure.
//! let server = ServerHandle::start(ServerConfig::default(), || {
//!     let cfg = BaselineConfig::scaled(2, 24, 12);
//!     let ts3 = TS3NetConfig::scaled(2, 24, 12);
//!     let model: Rc<dyn ForecastModel> =
//!         Rc::from(build_forecaster("DLinear", &cfg, &ts3, 7));
//!     let calib = Tensor::zeros(&[1, 24, 2]);
//!     vec![CompiledPlan::freeze(model, &calib).unwrap()]
//! });
//!
//! let (reply_tx, reply_rx) = channel();
//! server
//!     .submit(
//!         ForecastRequest {
//!             tenant: 0,
//!             input: Tensor::zeros(&[24, 2]),
//!             submitted: 0,
//!             deadline: 2,
//!         },
//!         &reply_tx,
//!     )
//!     .unwrap();
//! server.step(0).unwrap(); // held: batch not full, deadline not imminent
//! server.step(1).unwrap(); // deadline 2 is imminent -> executes now
//! let resp = reply_rx.recv().unwrap();
//! assert_eq!(resp.result.unwrap().shape(), &[12, 2]);
//! let stats = server.shutdown(2).unwrap();
//! assert_eq!(stats.completed, 1);
//! ```

pub mod clock;
pub mod coalescer;
pub mod online;
pub mod report;
pub mod server;
pub mod sim;

pub use clock::{Clock, VirtualClock};
pub use coalescer::{Coalescer, CoalescerConfig, Pending};
pub use online::{run_online_sim, OnlineConfig, OnlineReport};
pub use report::{
    percentile_ns, summarize, write_bench_json, write_exposition, write_flight_json,
    write_folded, write_timeline_json, BenchRow, LatencySummary,
};
pub use server::{
    ForecastRequest, ForecastResponse, ServeError, ServerConfig, ServerHandle, ServerStats,
    StepReport,
};
pub use sim::{run_sim, SimConfig, SimReport};
