//! Latency summarization, `ts3.bench.v1` emission, and the telemetry
//! artifact writers (`ts3.timeline.v1`, `ts3.flight.v1`, Prometheus
//! text exposition, folded stacks).
//!
//! The serving benchmark reports through the same JSON schema as the
//! kernel/model benchmarks (`crates/bench`), so `bench_compare` can gate
//! serving-latency regressions with zero new tooling. Percentiles use
//! the same nearest-rank rule as `crates/bench::timing`. The telemetry
//! writers are thin filesystem shims over `ts3-obs` — the `serve_obs`
//! binary calls them after a traced run; they live here (binary-adjacent
//! code) so library modules stay free of file I/O.

use std::io;
use std::path::{Path, PathBuf};
use ts3_json::Json;

/// Nearest-rank percentile of an **ascending-sorted** sample list.
/// Returns 0 for an empty list.
///
/// ```
/// let samples = [10u64, 20, 30, 40, 50];
/// assert_eq!(ts3_serve::percentile_ns(&samples, 0.5), 30);
/// assert_eq!(ts3_serve::percentile_ns(&samples, 0.99), 50);
/// ```
pub fn percentile_ns(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Order statistics of a latency sample set.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencySummary {
    /// Median.
    pub p50_ns: u64,
    /// 25th percentile.
    pub p25_ns: u64,
    /// 75th percentile.
    pub p75_ns: u64,
    /// 99th percentile (nearest rank).
    pub p99_ns: u64,
    /// Fastest sample.
    pub min_ns: u64,
    /// Sample count.
    pub n: usize,
}

/// Summarize a (not necessarily sorted) list of nanosecond samples.
pub fn summarize(samples: &[u64]) -> LatencySummary {
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    LatencySummary {
        p50_ns: percentile_ns(&sorted, 0.50),
        p25_ns: percentile_ns(&sorted, 0.25),
        p75_ns: percentile_ns(&sorted, 0.75),
        p99_ns: percentile_ns(&sorted, 0.99),
        min_ns: sorted.first().copied().unwrap_or(0),
        n: sorted.len(),
    }
}

/// One `(op, shape)` row destined for a `ts3.bench.v1` file. The
/// `median_ns` field is what `bench_compare` gates on.
#[derive(Debug, Clone)]
pub struct BenchRow {
    /// Operation name, e.g. `serve_latency`.
    pub op: String,
    /// Shape/variant tag, e.g. `c8` for 8 clients.
    pub shape: String,
    /// Gated metric.
    pub median_ns: u64,
    /// Lower quartile.
    pub p25_ns: u64,
    /// Upper quartile.
    pub p75_ns: u64,
    /// Fastest sample.
    pub min_ns: u64,
    /// Samples behind the row.
    pub iters: u64,
}

impl BenchRow {
    /// Row carrying a full latency summary.
    pub fn from_summary(op: &str, shape: &str, s: &LatencySummary) -> BenchRow {
        BenchRow {
            op: op.to_string(),
            shape: shape.to_string(),
            median_ns: s.p50_ns,
            p25_ns: s.p25_ns,
            p75_ns: s.p75_ns,
            min_ns: s.min_ns,
            iters: s.n as u64,
        }
    }

    /// Row for a single scalar metric (e.g. ns-per-forecast rate).
    pub fn scalar(op: &str, shape: &str, value_ns: u64, iters: u64) -> BenchRow {
        BenchRow {
            op: op.to_string(),
            shape: shape.to_string(),
            median_ns: value_ns,
            p25_ns: value_ns,
            p75_ns: value_ns,
            min_ns: value_ns,
            iters,
        }
    }
}

/// Write the current request-timeline registry as a `ts3.timeline.v1`
/// document (see `ts3_obs::timeline_to_json` for the schema).
pub fn write_timeline_json(path: &Path) -> io::Result<PathBuf> {
    std::fs::write(path, ts3_obs::timeline_to_json().to_string_pretty())?;
    Ok(path.to_path_buf())
}

/// Write the flight recorder's `ts3.flight.v1` postmortem, if the
/// recorder is armed and has fired. Returns `Ok(None)` (writing
/// nothing) when there is no postmortem to dump.
pub fn write_flight_json(path: &Path) -> io::Result<Option<PathBuf>> {
    match ts3_obs::flight::to_json() {
        Some(doc) => {
            std::fs::write(path, doc.to_string_pretty())?;
            Ok(Some(path.to_path_buf()))
        }
        None => Ok(None),
    }
}

/// Write the Prometheus-style text exposition of both metric registries
/// (`ts3_obs::expo::render` — byte-deterministic ordering).
pub fn write_exposition(path: &Path) -> io::Result<PathBuf> {
    std::fs::write(path, ts3_obs::expo::render())?;
    Ok(path.to_path_buf())
}

/// Write the recorded span tree as folded stacks (`path self_us` lines,
/// flamegraph input format).
pub fn write_folded(path: &Path) -> io::Result<PathBuf> {
    let (spans, _, _) = ts3_obs::snapshot_records();
    std::fs::write(path, ts3_obs::folded_stacks(&spans))?;
    Ok(path.to_path_buf())
}

/// Write rows as a `ts3.bench.v1` document (the same schema
/// `crates/bench` emits, so `bench_compare` accepts the file as-is).
pub fn write_bench_json(path: &Path, rows: &[BenchRow]) -> io::Result<PathBuf> {
    let entries: Json = rows
        .iter()
        .map(|r| {
            Json::obj([
                ("op", Json::from(r.op.as_str())),
                ("shape", Json::from(r.shape.as_str())),
                ("median_ns", Json::Num(r.median_ns as f64)),
                ("p25_ns", Json::Num(r.p25_ns as f64)),
                ("p75_ns", Json::Num(r.p75_ns as f64)),
                ("min_ns", Json::Num(r.min_ns as f64)),
                ("iters", Json::Num(r.iters as f64)),
            ])
        })
        .collect();
    let doc = Json::obj([
        ("schema", Json::from("ts3.bench.v1")),
        ("threads", Json::Num(ts3_tensor::par::max_threads() as f64)),
        ("entries", entries),
    ]);
    std::fs::write(path, doc.to_string_pretty())?;
    Ok(path.to_path_buf())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank_matches_bench_convention() {
        let s = [1u64, 2, 3, 4, 5, 6, 7, 8, 9, 10];
        assert_eq!(percentile_ns(&s, 0.0), 1);
        assert_eq!(percentile_ns(&s, 0.5), 6); // round(9 * 0.5) = 5 -> s[5]
        assert_eq!(percentile_ns(&s, 0.99), 10);
        assert_eq!(percentile_ns(&[], 0.5), 0);
    }

    #[test]
    fn summarize_orders_the_samples() {
        let s = summarize(&[30, 10, 20]);
        assert_eq!(s.p50_ns, 20);
        assert_eq!(s.min_ns, 10);
        assert_eq!(s.n, 3);
    }

    #[test]
    fn bench_json_round_trips_through_ts3_json() {
        let rows = [
            BenchRow::from_summary(
                "serve_latency",
                "c8",
                &LatencySummary { p50_ns: 100, p25_ns: 90, p75_ns: 110, p99_ns: 200, min_ns: 80, n: 64 },
            ),
            BenchRow::scalar("serve_rate", "c8", 12345, 64),
        ];
        let path = std::env::temp_dir().join("ts3_serve_report_test.json");
        write_bench_json(&path, &rows).unwrap();
        let doc = Json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(doc.get("schema").unwrap().as_str(), Some("ts3.bench.v1"));
        let entries = doc.get("entries").unwrap();
        assert_eq!(entries.as_array().unwrap().len(), 2);
        let first = &entries.as_array().unwrap()[0];
        assert_eq!(first.get("op").unwrap().as_str(), Some("serve_latency"));
        assert_eq!(first.get("median_ns").unwrap().as_f64(), Some(100.0));
        std::fs::remove_file(&path).ok();
    }
}
