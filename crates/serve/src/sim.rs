//! Deterministic closed-loop load simulation.
//!
//! Drives a [`ServerHandle`] from a single thread in **lockstep**: at
//! every tick each idle client submits one request, the server runs its
//! scheduling step, and replies are collected — so the batching
//! decisions, response order and latency histogram are a pure function
//! of `(SimConfig, builder)`. There are no client threads and no
//! wallclock reads; running the same simulation twice (or under a
//! different worker-pool thread cap) produces a bit-identical
//! [`SimReport`].
//!
//! Latencies are measured in **ticks** (`completed - submitted`), which
//! is the scheduling latency induced by coalescing. The `serve_bench`
//! binary layers real nanosecond timing on top of the same lockstep
//! loop; this module stays time-free so it can live in library code
//! under the `ts3-lint` wallclock ban.

use crate::server::{ForecastRequest, ForecastResponse, ServerConfig, ServerHandle, ServerStats};
use std::sync::mpsc::{channel, Receiver, Sender};
use ts3_rng::rngs::StdRng;
use ts3_rng::{Rng, SeedableRng};
use ts3_tensor::Tensor;
use ts3net_core::CompiledPlan;

/// Simulation parameters.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Concurrent closed-loop clients.
    pub n_clients: usize,
    /// Ticks to run before the graceful-shutdown drain.
    pub ticks: u64,
    /// Seed for every client's window-generator stream.
    pub seed: u64,
    /// Deadline = submit tick + this slack.
    pub deadline_slack: u64,
    /// `[lookback, c_in]` of each tenant's plan, in tenant order. Client
    /// `i` talks to tenant `i % tenants.len()`.
    pub tenants: Vec<[usize; 2]>,
    /// Server/batching knobs.
    pub server: ServerConfig,
    /// Optional injected outage: during ticks `[start, start + len)` the
    /// server's scheduling step is skipped while clients keep
    /// submitting, so queued deadlines slip and the run produces a
    /// deterministic deadline-miss burst. Used to exercise the
    /// `ts3_obs::flight` recorder's SLO trigger.
    pub stall: Option<(u64, u64)>,
}

/// What a simulation run produced. Every field is deterministic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimReport {
    /// Successful forecasts returned to clients.
    pub forecasts: u64,
    /// Scheduling latency of each forecast in ticks, in completion order.
    pub latencies_ticks: Vec<u64>,
    /// Batch size each forecast rode in, aligned with `latencies_ticks`.
    pub batch_sizes: Vec<usize>,
    /// Final server counters.
    pub stats: ServerStats,
}

struct Client {
    tenant: usize,
    rng: StdRng,
    in_flight: bool,
    reply_tx: Sender<ForecastResponse>,
    reply_rx: Receiver<ForecastResponse>,
}

impl Client {
    /// Synthetic lookback window: trend + seasonality + seeded noise, so
    /// the decomposition paths inside the models do real work.
    fn window(&mut self, shape: [usize; 2]) -> Tensor {
        let [t, c] = shape;
        let mut data = Vec::with_capacity(t * c);
        for ti in 0..t {
            for ci in 0..c {
                let phase = std::f32::consts::TAU * ti as f32 / 8.0 + ci as f32;
                let noise: f32 = self.rng.gen::<f32>() - 0.5;
                data.push(0.05 * ti as f32 + phase.sin() + 0.1 * noise);
            }
        }
        Tensor::from_vec(data, &[t, c])
    }
}

/// Run the closed-loop simulation. `builder` runs on the server's
/// executor thread and must return one plan per entry in
/// `cfg.tenants`, with matching geometries.
pub fn run_sim(
    cfg: &SimConfig,
    builder: impl FnOnce() -> Vec<CompiledPlan> + Send + 'static,
) -> SimReport {
    let server = ServerHandle::start(cfg.server, builder);
    let n_tenants = cfg.tenants.len().max(1);
    let mut clients: Vec<Client> = (0..cfg.n_clients)
        .map(|i| {
            let (reply_tx, reply_rx) = channel();
            Client {
                tenant: i % n_tenants,
                rng: StdRng::seed_from_u64(cfg.seed.wrapping_add(i as u64)),
                in_flight: false,
                reply_tx,
                reply_rx,
            }
        })
        .collect();
    let mut report = SimReport {
        forecasts: 0,
        latencies_ticks: Vec::new(),
        batch_sizes: Vec::new(),
        stats: ServerStats::default(),
    };

    for now in 0..cfg.ticks {
        // 1) Idle clients submit, in client order (deterministic).
        for client in clients.iter_mut() {
            if client.in_flight {
                continue;
            }
            let shape = cfg.tenants[client.tenant];
            let req = ForecastRequest {
                tenant: client.tenant,
                input: client.window(shape),
                submitted: now,
                deadline: now + cfg.deadline_slack,
            };
            let reply = client.reply_tx.clone();
            if server.submit(req, &reply).is_ok() {
                client.in_flight = true;
            }
        }
        // 2) The server schedules and executes everything due this tick
        //    — unless this tick falls inside an injected stall window.
        let stalled = cfg.stall.is_some_and(|(start, len)| now >= start && now < start + len);
        if !stalled && server.step(now).is_err() {
            break;
        }
        // 3) Collect replies (lockstep: all responses for this tick are
        //    already in the channels when `step` returns).
        for client in clients.iter_mut() {
            while let Ok(resp) = client.reply_rx.try_recv() {
                client.in_flight = false;
                if resp.result.is_ok() {
                    report.forecasts += 1;
                    report.latencies_ticks.push(resp.completed - resp.submitted);
                    report.batch_sizes.push(resp.batched_with);
                }
            }
        }
    }

    // Graceful shutdown answers everything still queued at tick `ticks`.
    report.stats = server.shutdown(cfg.ticks).unwrap_or_default();
    for client in clients.iter_mut() {
        while let Ok(resp) = client.reply_rx.try_recv() {
            if resp.result.is_ok() {
                report.forecasts += 1;
                report.latencies_ticks.push(resp.completed - resp.submitted);
                report.batch_sizes.push(resp.batched_with);
            }
        }
    }
    report
}
