//! Online-forecast mode: per-stream pulsed decomposition feeding warm
//! compiled plans.
//!
//! The closed-loop [`sim`](crate::sim) models request/response clients
//! that ship a whole `[T, C]` window per request. The online mode
//! models the streaming workload the ROADMAP targets — each client
//! **appends one sample per tick** — by keeping a
//! [`PulsedTriple`] per stream: O(C) ring
//! bookkeeping per sample, and on each pulse (every `hop` samples once
//! warm) the trailing window goes to the tenant's warm
//! [`CompiledPlan`] through the ordinary
//! coalescing server. A [`SlidingDft`] monitor
//! rides along and flags period drift (its cheap per-sample dominant
//! period disagreeing with the pulse's exact `T_f`) — the signal a
//! production deployment would use to trigger re-calibration.
//!
//! Like `sim`, the driver is single-threaded lockstep with no wallclock:
//! the same [`OnlineConfig`] produces a bit-identical [`OnlineReport`]
//! at any worker-pool thread cap (asserted in
//! `tests/serve_integration.rs`).

use crate::server::{ForecastRequest, ForecastResponse, ServerConfig, ServerHandle, ServerStats};
use std::sync::mpsc::{channel, Receiver, Sender};
use ts3_rng::rngs::StdRng;
use ts3_rng::{Rng, SeedableRng};
use ts3_signal::decompose::TripleConfig;
use ts3_stream::{PulsedTriple, SlidingDft, StreamConfig};
use ts3net_core::CompiledPlan;

/// Online-simulation parameters.
#[derive(Debug, Clone)]
pub struct OnlineConfig {
    /// Independent sample streams (each is one "user").
    pub n_streams: usize,
    /// Ticks to run; every stream appends one sample per tick.
    pub ticks: u64,
    /// Seed for the per-stream sample generators.
    pub seed: u64,
    /// Forecast deadline = pulse tick + this slack.
    pub deadline_slack: u64,
    /// `[lookback, c_in]` of each tenant's plan, in tenant order.
    /// Stream `i` talks to tenant `i % tenants.len()`.
    pub tenants: Vec<[usize; 2]>,
    /// Pulse cadence: decompose + submit every `hop` samples once warm.
    pub hop: usize,
    /// Spectral bands for the streaming decomposition.
    pub lambda: usize,
    /// Server/batching knobs.
    pub server: ServerConfig,
}

/// What an online run produced. Every field is deterministic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OnlineReport {
    /// Samples appended across all streams.
    pub samples: u64,
    /// Pulses emitted (streaming decompositions computed).
    pub pulses: u64,
    /// Pulses skipped because the stream still had a forecast in flight.
    pub pulses_skipped: u64,
    /// Successful forecasts returned.
    pub forecasts: u64,
    /// Scheduling latency of each forecast in ticks, completion order.
    pub latencies_ticks: Vec<u64>,
    /// Batch size each forecast rode in, aligned with `latencies_ticks`.
    pub batch_sizes: Vec<usize>,
    /// Pulses whose exact `T_f` differed from the previous pulse's.
    pub t_f_changes: u64,
    /// Pulses where the sliding-DFT monitor disagreed with the exact
    /// `T_f` — the online period-drift alert.
    pub drift_alerts: u64,
    /// Final server counters.
    pub stats: ServerStats,
}

struct Stream {
    tenant: usize,
    rng: StdRng,
    pulse: PulsedTriple,
    monitor: SlidingDft,
    last_t_f: Option<usize>,
    in_flight: bool,
    reply_tx: Sender<ForecastResponse>,
    reply_rx: Receiver<ForecastResponse>,
}

impl Stream {
    /// One synthetic sample row: trend + two tones + seeded noise, the
    /// same flavor as the request-mode sim windows.
    fn sample(&mut self, now: u64, channels: usize) -> Vec<f32> {
        (0..channels)
            .map(|ch| {
                let ti = now as f32;
                let noise: f32 = self.rng.gen::<f32>() - 0.5;
                0.02 * ti
                    + (std::f32::consts::TAU * ti / 8.0 + ch as f32).sin()
                    + 0.3 * (std::f32::consts::TAU * ti / 24.0).cos()
                    + 0.1 * noise
            })
            .collect()
    }
}

/// Run the online streaming simulation. `builder` runs on the server's
/// executor thread and must return one plan per entry in `cfg.tenants`,
/// with matching geometries.
pub fn run_online_sim(
    cfg: &OnlineConfig,
    builder: impl FnOnce() -> Vec<CompiledPlan> + Send + 'static,
) -> OnlineReport {
    assert!(cfg.hop >= 1, "run_online_sim: hop must be >= 1");
    let server = ServerHandle::start(cfg.server, builder);
    let n_tenants = cfg.tenants.len().max(1);
    let mut streams: Vec<Stream> = (0..cfg.n_streams)
        .map(|i| {
            let tenant = i % n_tenants;
            let [t, c] = cfg.tenants[tenant];
            let (reply_tx, reply_rx) = channel();
            let triple = TripleConfig { lambda: cfg.lambda, ..Default::default() };
            Stream {
                tenant,
                rng: StdRng::seed_from_u64(cfg.seed.wrapping_add(i as u64)),
                pulse: PulsedTriple::new(StreamConfig {
                    window: t,
                    channels: c,
                    hop: cfg.hop,
                    triple,
                }),
                monitor: SlidingDft::new(t, c),
                last_t_f: None,
                in_flight: false,
                reply_tx,
                reply_rx,
            }
        })
        .collect();
    let mut report = OnlineReport {
        samples: 0,
        pulses: 0,
        pulses_skipped: 0,
        forecasts: 0,
        latencies_ticks: Vec::new(),
        batch_sizes: Vec::new(),
        t_f_changes: 0,
        drift_alerts: 0,
        stats: ServerStats::default(),
    };

    for now in 0..cfg.ticks {
        // 1) Every stream appends one sample, in stream order. Sampling
        //    never pauses — streaming state advances even while a
        //    forecast is in flight; only the *submit* is skipped then.
        for stream in streams.iter_mut() {
            let [t, c] = cfg.tenants[stream.tenant];
            let row = stream.sample(now, c);
            stream.monitor.push(&row);
            let Some(emit) = stream.pulse.push(&row) else {
                report.samples += 1;
                continue;
            };
            report.samples += 1;
            report.pulses += 1;
            if stream.last_t_f.is_some_and(|prev| prev != emit.t_f) {
                report.t_f_changes += 1;
            }
            stream.last_t_f = Some(emit.t_f);
            if let Some(observed) = stream.monitor.drift_against(emit.t_f) {
                report.drift_alerts += 1;
                crate::server::with_tenant_label(stream.tenant, |labels| {
                    ts3_obs::counter_add_l("stream.drift_alerts", labels, 1);
                });
                ts3_obs::flight::note_drift(now, stream.tenant, emit.t_f, observed);
            }
            if stream.in_flight {
                report.pulses_skipped += 1;
                continue;
            }
            let req = ForecastRequest {
                tenant: stream.tenant,
                input: emit.window_tensor(t, c),
                submitted: now,
                deadline: now + cfg.deadline_slack,
            };
            let reply = stream.reply_tx.clone();
            if server.submit(req, &reply).is_ok() {
                stream.in_flight = true;
            }
        }
        // 2) The server schedules and executes everything due this tick.
        if server.step(now).is_err() {
            break;
        }
        // 3) Collect replies (lockstep, as in `sim`).
        for stream in streams.iter_mut() {
            while let Ok(resp) = stream.reply_rx.try_recv() {
                stream.in_flight = false;
                if resp.result.is_ok() {
                    report.forecasts += 1;
                    report.latencies_ticks.push(resp.completed - resp.submitted);
                    report.batch_sizes.push(resp.batched_with);
                }
            }
        }
    }

    report.stats = server.shutdown(cfg.ticks).unwrap_or_default();
    for stream in streams.iter_mut() {
        while let Ok(resp) = stream.reply_rx.try_recv() {
            if resp.result.is_ok() {
                report.forecasts += 1;
                report.latencies_ticks.push(resp.completed - resp.submitted);
                report.batch_sizes.push(resp.batched_with);
            }
        }
    }
    report
}
