//! Deadline-aware request coalescing.
//!
//! Pure scheduling logic, deliberately free of channels, threads and
//! clocks: the owner pushes pending items and asks "what is due at tick
//! `now`?". Keeping the policy a plain data structure makes it
//! deterministic (tenant order, FIFO within tenant) and directly
//! unit-testable.
//!
//! A tenant's queue is flushed as a batch when any of:
//!
//! * it has reached `max_batch` entries (flushed in full-batch chunks),
//! * its oldest entry has waited `max_hold` ticks (bounded latency), or
//! * waiting one more tick would miss some entry's deadline.

/// Coalescing policy knobs.
#[derive(Debug, Clone, Copy)]
pub struct CoalescerConfig {
    /// Largest batch a single plan execution may carry.
    pub max_batch: usize,
    /// Longest a request may sit in the queue before it is flushed even
    /// if the batch is not full, in ticks.
    pub max_hold: u64,
}

impl Default for CoalescerConfig {
    fn default() -> Self {
        CoalescerConfig { max_batch: 8, max_hold: 2 }
    }
}

/// One queued item: scheduling metadata plus an opaque payload (the
/// server stores the request tensor and its reply channel here).
#[derive(Debug)]
pub struct Pending<T> {
    /// Tick at which the item entered the queue.
    pub submitted: u64,
    /// Tick by which the caller wants the forecast back.
    pub deadline: u64,
    /// Owner-defined payload.
    pub payload: T,
}

/// Per-tenant FIFO queues with the flush policy above. Tenants are dense
/// indices (`0..n_tenants`), so storage is a `Vec` of queues — no maps,
/// no iteration-order hazards.
pub struct Coalescer<T> {
    queues: Vec<Vec<Pending<T>>>,
    cfg: CoalescerConfig,
}

impl<T> Coalescer<T> {
    /// Empty queues for `n_tenants` tenants.
    pub fn new(n_tenants: usize, cfg: CoalescerConfig) -> Coalescer<T> {
        Coalescer {
            queues: (0..n_tenants).map(|_| Vec::new()).collect(),
            cfg,
        }
    }

    /// Number of tenants this coalescer schedules.
    pub fn tenants(&self) -> usize {
        self.queues.len()
    }

    /// Total queued items across tenants.
    pub fn pending(&self) -> usize {
        self.queues.iter().map(Vec::len).sum()
    }

    /// Enqueue an item for `tenant`.
    pub fn push(&mut self, tenant: usize, item: Pending<T>) {
        self.queues[tenant].push(item);
    }

    /// Remove and return every batch due at tick `now`, in tenant order,
    /// FIFO within each tenant, each batch at most `max_batch` long.
    pub fn due(&mut self, now: u64) -> Vec<(usize, Vec<Pending<T>>)> {
        let mut out = Vec::new();
        for tenant in 0..self.queues.len() {
            loop {
                let q = &self.queues[tenant];
                if q.is_empty() {
                    break;
                }
                let full = q.len() >= self.cfg.max_batch;
                let held = now.saturating_sub(q[0].submitted) >= self.cfg.max_hold;
                let urgent = q.iter().any(|p| p.deadline <= now + 1);
                if !(full || held || urgent) {
                    break;
                }
                let take = q.len().min(self.cfg.max_batch);
                let batch: Vec<Pending<T>> = self.queues[tenant].drain(..take).collect();
                out.push((tenant, batch));
            }
        }
        out
    }

    /// Remove and return everything, due or not (graceful shutdown),
    /// chunked at `max_batch`.
    pub fn drain_all(&mut self) -> Vec<(usize, Vec<Pending<T>>)> {
        let mut out = Vec::new();
        for tenant in 0..self.queues.len() {
            while !self.queues[tenant].is_empty() {
                let take = self.queues[tenant].len().min(self.cfg.max_batch);
                let batch: Vec<Pending<T>> = self.queues[tenant].drain(..take).collect();
                out.push((tenant, batch));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(submitted: u64, deadline: u64) -> Pending<u32> {
        Pending { submitted, deadline, payload: 0 }
    }

    fn cfg(max_batch: usize, max_hold: u64) -> CoalescerConfig {
        CoalescerConfig { max_batch, max_hold }
    }

    #[test]
    fn holds_until_batch_fills() {
        let mut c = Coalescer::new(1, cfg(4, 100));
        for _ in 0..3 {
            c.push(0, item(0, 1000));
        }
        assert!(c.due(0).is_empty(), "3 < max_batch and nothing is urgent");
        c.push(0, item(0, 1000));
        let due = c.due(0);
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].0, 0);
        assert_eq!(due[0].1.len(), 4);
        assert_eq!(c.pending(), 0);
    }

    #[test]
    fn flushes_after_max_hold() {
        let mut c = Coalescer::new(1, cfg(8, 3));
        c.push(0, item(5, 1000));
        assert!(c.due(7).is_empty(), "held only 2 ticks");
        let due = c.due(8);
        assert_eq!(due.len(), 1, "held 3 ticks -> flush");
        assert_eq!(due[0].1.len(), 1);
    }

    #[test]
    fn flushes_before_a_deadline_would_be_missed() {
        let mut c = Coalescer::new(1, cfg(8, 100));
        c.push(0, item(0, 6));
        assert!(c.due(4).is_empty(), "deadline 6 is still 2 ticks away");
        let due = c.due(5);
        assert_eq!(due.len(), 1, "at tick 5, waiting to 6 would miss");
    }

    #[test]
    fn oversize_queue_splits_into_max_batch_chunks() {
        let mut c = Coalescer::new(1, cfg(4, 0));
        for _ in 0..10 {
            c.push(0, item(0, 1000));
        }
        let due = c.due(0);
        let sizes: Vec<usize> = due.iter().map(|(_, b)| b.len()).collect();
        assert_eq!(sizes, vec![4, 4, 2]);
    }

    #[test]
    fn tenants_are_isolated_and_ordered() {
        let mut c = Coalescer::new(3, cfg(2, 100));
        c.push(2, item(0, 1000));
        c.push(2, item(0, 1000));
        c.push(0, item(0, 1000));
        c.push(0, item(0, 1000));
        let due = c.due(0);
        let tenants: Vec<usize> = due.iter().map(|(t, _)| *t).collect();
        assert_eq!(tenants, vec![0, 2], "deterministic tenant order");
        assert_eq!(c.pending(), 0);
    }

    #[test]
    fn drain_all_empties_regardless_of_policy() {
        let mut c = Coalescer::new(2, cfg(4, 1000));
        c.push(0, item(0, 1000));
        c.push(1, item(0, 1000));
        assert!(c.due(0).is_empty());
        let drained = c.drain_all();
        assert_eq!(drained.len(), 2);
        assert_eq!(c.pending(), 0);
    }

    #[test]
    fn fifo_within_tenant() {
        let mut c = Coalescer::new(1, cfg(8, 0));
        c.push(0, Pending { submitted: 0, deadline: 10, payload: 1u32 });
        c.push(0, Pending { submitted: 0, deadline: 10, payload: 2u32 });
        let due = c.due(5);
        let order: Vec<u32> = due[0].1.iter().map(|p| p.payload).collect();
        assert_eq!(order, vec![1, 2]);
    }
}
