//! Deadline-aware request coalescing.
//!
//! Pure scheduling logic, deliberately free of channels, threads and
//! clocks: the owner pushes pending items and asks "what is due at tick
//! `now`?". Keeping the policy a plain data structure makes it
//! deterministic (tenant order, FIFO within tenant) and directly
//! unit-testable.
//!
//! A tenant's queue is flushed as a batch when any of:
//!
//! * it has reached `max_batch` entries (flushed in full-batch chunks),
//! * its oldest entry has waited `max_hold` ticks (bounded latency), or
//! * waiting one more tick would miss some entry's deadline.
//!
//! The scheduler self-reports through `ts3-obs`: a `serve.queue_depth`
//! gauge tracks items still queued after every push/flush, and a
//! `serve.coalesce_hold` histogram observes how many ticks each flushed
//! item was held past its first evaluation. Both are tick-valued (the
//! coalescer owns no clock), so the dumps are deterministic and
//! thread-count-invariant like every other serving metric.

/// Coalescing policy knobs.
#[derive(Debug, Clone, Copy)]
pub struct CoalescerConfig {
    /// Largest batch a single plan execution may carry.
    pub max_batch: usize,
    /// Longest a request may sit in the queue before it is flushed even
    /// if the batch is not full, in ticks.
    pub max_hold: u64,
}

impl Default for CoalescerConfig {
    fn default() -> Self {
        CoalescerConfig { max_batch: 8, max_hold: 2 }
    }
}

/// One queued item: scheduling metadata plus an opaque payload (the
/// server stores the request tensor and its reply channel here).
#[derive(Debug)]
pub struct Pending<T> {
    /// Tick at which the item entered the queue.
    pub submitted: u64,
    /// Tick by which the caller wants the forecast back.
    pub deadline: u64,
    /// Tick the coalescer first evaluated this item (`None` until the
    /// first [`Coalescer::due`]/[`Coalescer::drain_all`] sees it). The
    /// queue-wait segment of a request timeline ends here.
    pub seen: Option<u64>,
    /// Owner-defined payload.
    pub payload: T,
}

impl<T> Pending<T> {
    /// A freshly submitted item (not yet seen by the scheduler).
    pub fn new(submitted: u64, deadline: u64, payload: T) -> Pending<T> {
        Pending { submitted, deadline, seen: None, payload }
    }
}

/// Per-tenant FIFO queues with the flush policy above. Tenants are dense
/// indices (`0..n_tenants`), so storage is a `Vec` of queues — no maps,
/// no iteration-order hazards.
pub struct Coalescer<T> {
    queues: Vec<Vec<Pending<T>>>,
    cfg: CoalescerConfig,
}

impl<T> Coalescer<T> {
    /// Empty queues for `n_tenants` tenants.
    pub fn new(n_tenants: usize, cfg: CoalescerConfig) -> Coalescer<T> {
        Coalescer {
            queues: (0..n_tenants).map(|_| Vec::new()).collect(),
            cfg,
        }
    }

    /// Number of tenants this coalescer schedules.
    pub fn tenants(&self) -> usize {
        self.queues.len()
    }

    /// Total queued items across tenants.
    pub fn pending(&self) -> usize {
        self.queues.iter().map(Vec::len).sum()
    }

    /// Enqueue an item for `tenant`.
    pub fn push(&mut self, tenant: usize, item: Pending<T>) {
        self.queues[tenant].push(item);
        ts3_obs::gauge_set("serve.queue_depth", self.pending() as f64);
    }

    /// Stamp the first-evaluation tick on every unseen item and observe
    /// the hold histogram for everything in `batches` (tick each item
    /// waited past its first evaluation).
    fn account_flush(&mut self, now: u64, batches: &[(usize, Vec<Pending<T>>)]) {
        for q in &mut self.queues {
            for p in q.iter_mut() {
                p.seen.get_or_insert(now);
            }
        }
        for (_, batch) in batches {
            for p in batch {
                let held = now.saturating_sub(p.seen.unwrap_or(now));
                ts3_obs::observe("serve.coalesce_hold", held as f64);
            }
        }
        ts3_obs::gauge_set("serve.queue_depth", self.pending() as f64);
    }

    /// Remove and return every batch due at tick `now`, in tenant order,
    /// FIFO within each tenant, each batch at most `max_batch` long.
    /// Every item still queued afterwards has its `seen` tick stamped.
    pub fn due(&mut self, now: u64) -> Vec<(usize, Vec<Pending<T>>)> {
        let mut out = Vec::new();
        for tenant in 0..self.queues.len() {
            loop {
                let q = &mut self.queues[tenant];
                if q.is_empty() {
                    break;
                }
                for p in q.iter_mut() {
                    p.seen.get_or_insert(now);
                }
                let full = q.len() >= self.cfg.max_batch;
                let held = now.saturating_sub(q[0].submitted) >= self.cfg.max_hold;
                let urgent = q.iter().any(|p| p.deadline <= now + 1);
                if !(full || held || urgent) {
                    break;
                }
                let take = q.len().min(self.cfg.max_batch);
                let batch: Vec<Pending<T>> = self.queues[tenant].drain(..take).collect();
                out.push((tenant, batch));
            }
        }
        self.account_flush(now, &out);
        out
    }

    /// Remove and return everything, due or not (graceful shutdown at
    /// tick `now`), chunked at `max_batch`.
    pub fn drain_all(&mut self, now: u64) -> Vec<(usize, Vec<Pending<T>>)> {
        let mut out = Vec::new();
        for tenant in 0..self.queues.len() {
            for p in self.queues[tenant].iter_mut() {
                p.seen.get_or_insert(now);
            }
            while !self.queues[tenant].is_empty() {
                let take = self.queues[tenant].len().min(self.cfg.max_batch);
                let batch: Vec<Pending<T>> = self.queues[tenant].drain(..take).collect();
                out.push((tenant, batch));
            }
        }
        self.account_flush(now, &out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(submitted: u64, deadline: u64) -> Pending<u32> {
        Pending::new(submitted, deadline, 0)
    }

    fn cfg(max_batch: usize, max_hold: u64) -> CoalescerConfig {
        CoalescerConfig { max_batch, max_hold }
    }

    #[test]
    fn holds_until_batch_fills() {
        let mut c = Coalescer::new(1, cfg(4, 100));
        for _ in 0..3 {
            c.push(0, item(0, 1000));
        }
        assert!(c.due(0).is_empty(), "3 < max_batch and nothing is urgent");
        c.push(0, item(0, 1000));
        let due = c.due(0);
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].0, 0);
        assert_eq!(due[0].1.len(), 4);
        assert_eq!(c.pending(), 0);
    }

    #[test]
    fn flushes_after_max_hold() {
        let mut c = Coalescer::new(1, cfg(8, 3));
        c.push(0, item(5, 1000));
        assert!(c.due(7).is_empty(), "held only 2 ticks");
        let due = c.due(8);
        assert_eq!(due.len(), 1, "held 3 ticks -> flush");
        assert_eq!(due[0].1.len(), 1);
    }

    #[test]
    fn flushes_before_a_deadline_would_be_missed() {
        let mut c = Coalescer::new(1, cfg(8, 100));
        c.push(0, item(0, 6));
        assert!(c.due(4).is_empty(), "deadline 6 is still 2 ticks away");
        let due = c.due(5);
        assert_eq!(due.len(), 1, "at tick 5, waiting to 6 would miss");
    }

    #[test]
    fn oversize_queue_splits_into_max_batch_chunks() {
        let mut c = Coalescer::new(1, cfg(4, 0));
        for _ in 0..10 {
            c.push(0, item(0, 1000));
        }
        let due = c.due(0);
        let sizes: Vec<usize> = due.iter().map(|(_, b)| b.len()).collect();
        assert_eq!(sizes, vec![4, 4, 2]);
    }

    #[test]
    fn tenants_are_isolated_and_ordered() {
        let mut c = Coalescer::new(3, cfg(2, 100));
        c.push(2, item(0, 1000));
        c.push(2, item(0, 1000));
        c.push(0, item(0, 1000));
        c.push(0, item(0, 1000));
        let due = c.due(0);
        let tenants: Vec<usize> = due.iter().map(|(t, _)| *t).collect();
        assert_eq!(tenants, vec![0, 2], "deterministic tenant order");
        assert_eq!(c.pending(), 0);
    }

    #[test]
    fn drain_all_empties_regardless_of_policy() {
        let mut c = Coalescer::new(2, cfg(4, 1000));
        c.push(0, item(0, 1000));
        c.push(1, item(0, 1000));
        assert!(c.due(0).is_empty());
        let drained = c.drain_all(1);
        assert_eq!(drained.len(), 2);
        assert_eq!(c.pending(), 0);
    }

    #[test]
    fn seen_is_stamped_on_first_evaluation_and_sticks() {
        let mut c = Coalescer::new(1, cfg(8, 3));
        c.push(0, item(5, 1_000));
        assert!(c.due(6).is_empty(), "held only 1 tick");
        let due = c.due(8);
        assert_eq!(due.len(), 1, "held 3 ticks from submit -> flush");
        assert_eq!(due[0].1[0].seen, Some(6), "first evaluation tick must stick");
        // An item flushed on its first evaluation is seen at that tick.
        c.push(0, item(20, 21));
        let due = c.due(20);
        assert_eq!(due[0].1[0].seen, Some(20));
    }

    #[test]
    fn fifo_within_tenant() {
        let mut c = Coalescer::new(1, cfg(8, 0));
        c.push(0, Pending::new(0, 10, 1u32));
        c.push(0, Pending::new(0, 10, 2u32));
        let due = c.due(5);
        let order: Vec<u32> = due[0].1.iter().map(|p| p.payload).collect();
        assert_eq!(order, vec![1, 2]);
    }
}
