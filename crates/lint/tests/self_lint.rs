//! The workspace must lint clean with its committed config — the same
//! check `scripts/verify.sh` gate 7 runs, kept here so `cargo test`
//! alone catches a regression, and so the lint tool exercises itself
//! (the lint crate's own sources are part of the walk).

use std::path::Path;
use ts3_lint::{lint_workspace, Config};

fn workspace_root() -> &'static Path {
    // crates/lint -> crates -> workspace root
    Path::new(env!("CARGO_MANIFEST_DIR")).parent().unwrap().parent().unwrap()
}

#[test]
fn workspace_is_lint_clean_under_committed_config() {
    let root = workspace_root();
    let cfg_text = std::fs::read_to_string(root.join("ts3lint.json")).expect("read ts3lint.json");
    let cfg = Config::parse(&cfg_text).expect("parse ts3lint.json");
    let (diags, files) = lint_workspace(root, &cfg, &[]).expect("walk workspace");
    assert!(files > 100, "walk saw only {files} files — roots misconfigured?");
    let rendered: String = diags.iter().map(|d| d.render()).collect();
    assert!(diags.is_empty(), "workspace must be lint-clean:\n{rendered}");
}

#[test]
fn committed_config_matches_repo_layout() {
    let root = workspace_root();
    let cfg_text = std::fs::read_to_string(root.join("ts3lint.json")).expect("read ts3lint.json");
    let cfg = Config::parse(&cfg_text).expect("parse ts3lint.json");
    // Every allowlisted path must exist: a stale entry silently widens
    // the wallclock / FMA escape hatches.
    for rel in cfg.wallclock_allow.iter().chain(&cfg.fma_files) {
        assert!(root.join(rel).is_file(), "ts3lint.json names missing file `{rel}`");
    }
}
