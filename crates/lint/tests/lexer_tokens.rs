//! Known-answer tests for the lexer: the exact token streams for the
//! Rust constructs the rules depend on getting right — raw strings,
//! nested block comments, escaped char literals, and the
//! lifetime-vs-char-literal split.

use ts3_lint::lexer::{lex, TokKind, Token};

/// Compact (kind, text) view of a token stream.
fn kinds(tokens: &[Token]) -> Vec<(TokKind, &str)> {
    tokens.iter().map(|t| (t.kind, t.text.as_str())).collect()
}

#[test]
fn raw_strings_swallow_quotes_and_hashes() {
    let toks = lex(r####"let s = r#"say "hi" \n"# ;"####);
    assert_eq!(
        kinds(&toks),
        vec![
            (TokKind::Ident, "let"),
            (TokKind::Ident, "s"),
            (TokKind::Punct, "="),
            (TokKind::Str, r####"r#"say "hi" \n"#"####),
            (TokKind::Punct, ";"),
        ]
    );
    // Two guard hashes, and an unescaped `"#` inside that must not end
    // the literal early.
    let toks = lex(r#####"r##"has "# inside"##"#####);
    assert_eq!(kinds(&toks), vec![(TokKind::Str, r#####"r##"has "# inside"##"#####)]);
}

#[test]
fn byte_and_raw_byte_strings_are_string_tokens() {
    let toks = lex(r###"(b"bytes", br#"raw "b" ytes"#, b'x')"###);
    assert_eq!(
        kinds(&toks),
        vec![
            (TokKind::Punct, "("),
            (TokKind::Str, r#"b"bytes""#),
            (TokKind::Punct, ","),
            (TokKind::Str, r###"br#"raw "b" ytes"#"###),
            (TokKind::Punct, ","),
            (TokKind::Char, "b'x'"),
            (TokKind::Punct, ")"),
        ]
    );
}

#[test]
fn nested_block_comments_close_at_matching_depth() {
    let toks = lex("a /* outer /* inner */ still comment */ b");
    assert_eq!(
        kinds(&toks),
        vec![
            (TokKind::Ident, "a"),
            (TokKind::BlockComment, "/* outer /* inner */ still comment */"),
            (TokKind::Ident, "b"),
        ]
    );
}

#[test]
fn escaped_quote_char_literal_is_one_token() {
    // `'\''` is the single-quote char literal — the escape must keep the
    // lexer from treating the middle quote as a terminator.
    let toks = lex(r"let q = '\''; let nl = '\n';");
    assert_eq!(
        kinds(&toks),
        vec![
            (TokKind::Ident, "let"),
            (TokKind::Ident, "q"),
            (TokKind::Punct, "="),
            (TokKind::Char, r"'\''"),
            (TokKind::Punct, ";"),
            (TokKind::Ident, "let"),
            (TokKind::Ident, "nl"),
            (TokKind::Punct, "="),
            (TokKind::Char, r"'\n'"),
            (TokKind::Punct, ";"),
        ]
    );
}

#[test]
fn lifetimes_are_not_char_literals() {
    // `'a` in a generic list is a lifetime; `'a'` is a char. Both appear
    // here and must produce different token kinds.
    let toks = lex("fn f<'a>(x: &'a str) -> char { 'a' }");
    let lifetimes: Vec<&Token> = toks.iter().filter(|t| t.kind == TokKind::Lifetime).collect();
    let chars: Vec<&Token> = toks.iter().filter(|t| t.kind == TokKind::Char).collect();
    assert_eq!(lifetimes.len(), 2, "{toks:?}");
    assert!(lifetimes.iter().all(|t| t.text == "'a"));
    assert_eq!(chars.len(), 1);
    assert_eq!(chars[0].text, "'a'");
}

#[test]
fn numbers_with_ranges_suffixes_and_exponents() {
    // `0..n` must lex as number, `..`, ident — not a malformed float.
    let toks = lex("for i in 0..n { x += 1.5e-3f32 + 0xFF_u8 as f32; }");
    let texts: Vec<&str> =
        toks.iter().filter(|t| t.kind == TokKind::Number).map(|t| t.text.as_str()).collect();
    assert_eq!(texts, vec!["0", "1.5e-3f32", "0xFF_u8"]);
    assert!(toks.iter().any(|t| t.kind == TokKind::Punct && t.text == ".."));
}

#[test]
fn line_and_column_positions_are_one_based() {
    let toks = lex("ab\n  cd");
    assert_eq!((toks[0].line, toks[0].col), (1, 1));
    assert_eq!((toks[1].line, toks[1].col), (2, 3));
}

#[test]
fn multi_char_operators_stay_single_tokens() {
    let toks = lex("a <<= b >>= c ..= d :: e -> f => g && h");
    let puncts: Vec<&str> =
        toks.iter().filter(|t| t.kind == TokKind::Punct).map(|t| t.text.as_str()).collect();
    assert_eq!(puncts, vec!["<<=", ">>=", "..=", "::", "->", "=>", "&&"]);
}

#[test]
fn raw_identifiers_lex_as_idents() {
    let toks = lex("let r#type = r#match;");
    let idents: Vec<&str> =
        toks.iter().filter(|t| t.kind == TokKind::Ident).map(|t| t.text.as_str()).collect();
    assert_eq!(idents, vec!["let", "r#type", "r#match"]);
}

#[test]
fn strings_with_escapes_do_not_leak_terminators() {
    let toks = lex(r#"let s = "quote \" slash \\"; done"#);
    assert_eq!(toks[3].kind, TokKind::Str);
    assert_eq!(toks[3].text, r#""quote \" slash \\""#);
    assert_eq!(toks.last().unwrap().text, "done");
}
