//! Seeded violations for the graph rule families, each built as a tiny
//! on-disk workspace under `CARGO_TARGET_TMPDIR`: a back-edged crate
//! pair for `crate-layering`, an inverted lock pair for `lock-order`,
//! a ghost env knob for `env-registry`, and a dangling config path for
//! `config-liveness` — plus the compliant spelling of each, which must
//! stay quiet.

use std::path::{Path, PathBuf};
use ts3_lint::{lint_workspace_v2, Config, FileKind};

/// Create a fresh fixture workspace directory for `name`.
fn fixture_root(name: &str) -> PathBuf {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    if root.exists() {
        std::fs::remove_dir_all(&root).unwrap();
    }
    std::fs::create_dir_all(&root).unwrap();
    root
}

fn write(root: &Path, rel: &str, text: &str) {
    let path = root.join(rel);
    std::fs::create_dir_all(path.parent().unwrap()).unwrap();
    std::fs::write(path, text).unwrap();
}

/// A two-crate workspace: `ts3-low` (layer 0) and `ts3-high` (layer 1).
/// `invert` plants the back-edge (low depends on and uses high).
fn layered_workspace(name: &str, invert: bool) -> PathBuf {
    let root = fixture_root(name);
    write(&root, "Cargo.toml", "[package]\nname = \"demo-root\"\n");
    write(
        &root,
        "ARCHITECTURE.md",
        "# demo\n\n<!-- ts3lint:layers\n0: ts3-low\n1: ts3-high\n2: demo-root\n-->\n",
    );
    let low_deps = if invert { "[dependencies]\nts3-high = { path = \"../high\" }\n" } else { "" };
    write(
        &root,
        "crates/low/Cargo.toml",
        &format!("[package]\nname = \"ts3-low\"\n{low_deps}"),
    );
    let low_src = if invert {
        "pub use ts3_high::thing;\npub fn low() {}\n"
    } else {
        "pub fn low() {}\n"
    };
    write(&root, "crates/low/src/lib.rs", low_src);
    write(
        &root,
        "crates/high/Cargo.toml",
        "[package]\nname = \"ts3-high\"\n[dependencies]\nts3-low = { path = \"../low\" }\n",
    );
    write(&root, "crates/high/src/lib.rs", "pub use ts3_low::low;\npub fn thing() {}\n");
    root
}

fn run(root: &Path, cfg: &Config, rule: &str) -> Vec<ts3_lint::Diagnostic> {
    lint_workspace_v2(root, cfg, &[rule.to_string()]).unwrap().diags
}

#[test]
fn crate_layering_flags_manifest_and_use_back_edges() {
    let root = layered_workspace("layering-bad", true);
    let diags = run(&root, &Config::default(), "crate-layering");
    assert!(diags.iter().all(|d| d.rule == "crate-layering"), "{diags:?}");
    // One back-edge in low's Cargo.toml, one at the `ts3_high::` use.
    assert!(
        diags.iter().any(|d| d.path == "crates/low/Cargo.toml"),
        "missing manifest back-edge: {diags:?}"
    );
    assert!(
        diags.iter().any(|d| d.path == "crates/low/src/lib.rs"),
        "missing use-site back-edge: {diags:?}"
    );
}

#[test]
fn crate_layering_accepts_a_layered_workspace() {
    let root = layered_workspace("layering-good", false);
    let out = lint_workspace_v2(&root, &Config::default(), &["crate-layering".to_string()])
        .unwrap();
    assert!(out.diags.is_empty(), "{:?}", out.diags);
    // The resolved DAG records high -> low.
    assert_eq!(out.crate_dag["ts3-high"], vec!["ts3-low".to_string()]);
    assert!(out.crate_dag["ts3-low"].is_empty());
}

#[test]
fn crate_layering_requires_the_committed_layer_block() {
    let root = layered_workspace("layering-no-block", false);
    std::fs::remove_file(root.join("ARCHITECTURE.md")).unwrap();
    let diags = run(&root, &Config::default(), "crate-layering");
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].path, "ARCHITECTURE.md");
    assert!(diags[0].message.contains("ts3lint:layers"), "{}", diags[0].message);
}

/// Lock fixture: one function acquiring `b_guard` then `a_guard`, with
/// the committed order saying `a` is outer. `invert` plants the
/// contradiction.
fn lock_workspace(name: &str, invert: bool) -> PathBuf {
    let root = fixture_root(name);
    write(&root, "Cargo.toml", "[package]\nname = \"demo-root\"\n");
    let (first, second) = if invert { ("b_guard", "a_guard") } else { ("a_guard", "b_guard") };
    write(
        &root,
        "crates/lk/Cargo.toml",
        "[package]\nname = \"ts3-lk\"\n",
    );
    write(
        &root,
        "crates/lk/src/lib.rs",
        &format!(
            "use std::sync::Mutex;\n\
             pub struct S {{ pub a_guard: Mutex<u32>, pub b_guard: Mutex<u32> }}\n\
             pub fn nested(s: &S) -> u32 {{\n\
             \x20   let x = s.{first}.lock().ok().map(|g| *g).take();\n\
             \x20   let y = s.{second}.lock().ok().map(|g| *g).take();\n\
             \x20   x.zip(y).map(|(a, b)| a + b).take().into_iter().sum()\n\
             }}\n"
        ),
    );
    root
}

fn lock_cfg() -> Config {
    let mut cfg = Config::default();
    cfg.lock_order = vec!["lib.a_guard".to_string(), "lib.b_guard".to_string()];
    cfg
}

#[test]
fn lock_order_flags_an_inverted_pair() {
    let root = lock_workspace("lock-bad", true);
    let diags = run(&root, &lock_cfg(), "lock-order");
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].rule, "lock-order");
    assert!(
        diags[0].message.contains("inverting the committed order"),
        "{}",
        diags[0].message
    );
}

#[test]
fn lock_order_accepts_the_committed_order_and_rejects_unknown_classes() {
    let root = lock_workspace("lock-good", false);
    assert!(run(&root, &lock_cfg(), "lock-order").is_empty());

    // Same sites with an empty committed list: both classes unknown.
    let diags = run(&root, &Config::default(), "lock-order");
    assert_eq!(diags.len(), 2, "{diags:?}");
    assert!(diags
        .iter()
        .all(|d| d.message.contains("not in the committed lock_order")));
}

#[test]
fn env_registry_flags_ghost_and_undocumented_knobs() {
    let root = fixture_root("env-ghost");
    write(&root, "Cargo.toml", "[package]\nname = \"demo-root\"\n");
    write(&root, "crates/e/Cargo.toml", "[package]\nname = \"ts3-e\"\n");
    write(
        &root,
        "crates/e/src/lib.rs",
        "pub fn knob() -> Option<String> { std::env::var(\"TS3_USED\").ok() }\n",
    );
    write(&root, "README.md", "# demo\n\nSet `TS3_USED` to use the knob.\n");
    let mut cfg = Config::default();
    cfg.env_registry = vec!["TS3_USED".to_string(), "TS3_GHOST".to_string()];
    let diags = run(&root, &cfg, "env-registry");
    // TS3_GHOST: never read (ts3lint.json anchor) + not in README.
    assert_eq!(diags.len(), 2, "{diags:?}");
    assert!(diags.iter().any(|d| d.path == "ts3lint.json" && d.message.contains("TS3_GHOST")));
    assert!(diags.iter().any(|d| d.path == "README.md" && d.message.contains("TS3_GHOST")));
}

#[test]
fn env_registry_file_half_flags_unregistered_reads() {
    let mut cfg = Config::default();
    cfg.env_registry = vec!["TS3_KNOWN".to_string()];
    let bad = "pub fn f() -> Option<String> { std::env::var(\"TS3_MYSTERY\").ok() }\n";
    let diags = ts3_lint::lint_source(
        "crates/demo/src/lib.rs",
        FileKind::Lib,
        bad,
        &cfg,
        &["env-registry".to_string()],
    );
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert!(diags[0].message.contains("TS3_MYSTERY"));

    let good = "pub fn f() -> Option<String> { std::env::var(\"TS3_KNOWN\").ok() }\n";
    let diags = ts3_lint::lint_source(
        "crates/demo/src/lib.rs",
        FileKind::Lib,
        good,
        &cfg,
        &["env-registry".to_string()],
    );
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn unsafe_dataflow_requires_an_assert_or_a_reasoned_allow() {
    let mut cfg = Config::default();
    cfg.unsafe_dataflow_files = vec!["crates/demo/src/lib.rs".to_string()];
    let lint = |src: &str| {
        ts3_lint::lint_source(
            "crates/demo/src/lib.rs",
            FileKind::Lib,
            src,
            &cfg,
            &["unsafe-dataflow".to_string()],
        )
    };

    let bad = "pub fn read(p: *const u8, i: usize) -> u8 {\n\
               \x20   unsafe { *p.add(i) }\n\
               }\n";
    let diags = lint(bad);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].rule, "unsafe-dataflow");

    let asserted = "pub fn read(buf: &[u8], i: usize) -> u8 {\n\
                    \x20   assert!(i < buf.len());\n\
                    \x20   unsafe { *buf.as_ptr().add(i) }\n\
                    }\n";
    assert!(lint(asserted).is_empty(), "{:?}", lint(asserted));

    let allowed = "pub fn read(p: *const u8, i: usize) -> u8 {\n\
                   \x20   // ts3-lint: allow(unsafe-dataflow) bound established by the caller contract\n\
                   \x20   unsafe { *p.add(i) }\n\
                   }\n";
    assert!(lint(allowed).is_empty(), "{:?}", lint(allowed));
}

#[test]
fn config_liveness_flags_dangling_policy_paths() {
    let root = fixture_root("cfg-liveness");
    write(&root, "Cargo.toml", "[package]\nname = \"demo-root\"\n");
    write(&root, "crates/c/Cargo.toml", "[package]\nname = \"ts3-c\"\n");
    write(&root, "crates/c/src/lib.rs", "pub fn f() {}\n");
    let mut cfg = Config::default();
    cfg.fma_files = vec!["crates/c/src/lib.rs".to_string(), "crates/c/src/nope.rs".to_string()];
    let diags = run(&root, &cfg, "config-liveness");
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].path, "ts3lint.json");
    assert!(diags[0].message.contains("nope.rs"), "{}", diags[0].message);
}
