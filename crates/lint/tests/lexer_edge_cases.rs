//! Lexer edge cases the graph rules lean on: multi-hash raw strings
//! with embedded terminator look-alikes, byte and raw-byte string
//! literals, inner attributes (`#![...]`), and `unsafe` appearing in
//! doc comments — none of which may confuse the token stream or
//! trigger token-based rules.

use ts3_lint::lexer::{lex, TokKind, Token};
use ts3_lint::{lint_source, Config, FileKind};

fn kinds(tokens: &[Token]) -> Vec<(TokKind, &str)> {
    tokens.iter().map(|t| (t.kind, t.text.as_str())).collect()
}

fn lint_lib(src: &str) -> Vec<ts3_lint::Diagnostic> {
    lint_source("crates/demo/src/lib.rs", FileKind::Lib, src, &Config::default(), &[])
}

#[test]
fn double_hash_raw_string_with_inner_single_hash_terminator() {
    // `"#` inside a `r##"…"##` literal must not end it; the body also
    // contains a full nested raw-string spelling.
    let src = r####"let s = r##"outer "# and r#"inner"# done"## ;"####;
    let toks = lex(src);
    assert_eq!(
        kinds(&toks),
        vec![
            (TokKind::Ident, "let"),
            (TokKind::Ident, "s"),
            (TokKind::Punct, "="),
            (TokKind::Str, r####"r##"outer "# and r#"inner"# done"##"####),
            (TokKind::Punct, ";"),
        ]
    );
}

#[test]
fn byte_and_raw_byte_strings_are_single_str_tokens() {
    let toks = lex(r###"let a = b"bytes \" here"; let c = br#"raw "bytes""#;"###);
    let strs: Vec<&str> = toks
        .iter()
        .filter(|t| t.kind == TokKind::Str)
        .map(|t| t.text.as_str())
        .collect();
    assert_eq!(strs, vec![r#"b"bytes \" here""#, r###"br#"raw "bytes""#"###]);
    // Nothing inside the literals leaks out as identifiers.
    assert!(toks.iter().all(|t| t.text != "bytes" && t.text != "raw"));
}

#[test]
fn inner_attributes_lex_as_punct_and_do_not_derail_rules() {
    let src = "#![allow(dead_code)]\n#![doc = \"top\"]\npub fn ok() {}\n";
    let toks = lex(src);
    // `#` then `!` then a bracketed group; the attribute body is
    // ordinary tokens, not swallowed.
    assert_eq!(toks[0].text, "#");
    assert_eq!(toks[1].text, "!");
    assert!(toks.iter().any(|t| t.text == "dead_code"));
    assert!(lint_lib(src).is_empty(), "{:?}", lint_lib(src));
}

#[test]
fn unsafe_in_doc_comments_and_strings_is_not_code() {
    // The word `unsafe` in a doc comment, a string, and a raw string
    // must not trip unsafe-needs-safety (or any unsafe rule).
    let src = "/// This function is not `unsafe` at all.\n\
               //! module docs mention unsafe too\n\
               pub fn safe() -> &'static str {\n\
               \x20   let _raw = r#\"unsafe { }\"#;\n\
               \x20   \"unsafe\"\n\
               }\n";
    let diags = lint_lib(src);
    assert!(diags.is_empty(), "{diags:?}");
    // And the lexer classifies them as comments/strings, not idents.
    let toks = lex(src);
    let unsafe_idents = toks
        .iter()
        .filter(|t| t.kind == TokKind::Ident && t.text == "unsafe")
        .count();
    assert_eq!(unsafe_idents, 0);
}

#[test]
fn doc_comment_unsafe_does_not_satisfy_a_real_unsafe_block() {
    // Conversely, a doc comment containing "SAFETY:" prose must still
    // count as the preceding safety comment for a genuine block below
    // it only when it is an actual comment line — a string containing
    // SAFETY: must not.
    let src = "pub fn deref(p: *const u8) -> u8 {\n\
               \x20   let _s = \"// SAFETY: not a comment\";\n\
               \x20   unsafe { *p }\n\
               }\n";
    let diags = lint_lib(src);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].rule, "unsafe-needs-safety");
}
