//! Each rule must fire on a seeded violation and stay quiet on the
//! compliant spelling — the gate-7 acceptance story in miniature.

use ts3_lint::{lint_source, Config, FileKind, Severity};

fn lint_lib(src: &str) -> Vec<ts3_lint::Diagnostic> {
    lint_source("crates/demo/src/lib.rs", FileKind::Lib, src, &Config::default(), &[])
}

fn rules(diags: &[ts3_lint::Diagnostic]) -> Vec<&str> {
    diags.iter().map(|d| d.rule).collect()
}

#[test]
fn unsafe_needs_safety_fires_and_clears() {
    let bad = "pub fn deref(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n";
    assert_eq!(rules(&lint_lib(bad)), vec!["unsafe-needs-safety"]);

    let good = "pub fn deref(p: *const u8) -> u8 {\n    // SAFETY: caller guarantees p is valid.\n    unsafe { *p }\n}\n";
    assert!(lint_lib(good).is_empty(), "{:?}", lint_lib(good));
}

#[test]
fn no_hashmap_fires_in_lib_but_not_in_tests() {
    let src = "use std::collections::HashMap;\npub fn f() -> HashMap<u32, u32> { HashMap::new() }\n";
    let diags = lint_lib(src);
    assert!(diags.iter().all(|d| d.rule == "no-hashmap-in-lib"), "{diags:?}");
    assert!(!diags.is_empty());

    let in_test =
        lint_source("crates/demo/tests/t.rs", FileKind::Test, src, &Config::default(), &[]);
    assert!(in_test.is_empty(), "{in_test:?}");
}

#[test]
fn wallclock_fires_outside_allowlist_only() {
    let src = "pub fn stamp() -> std::time::Instant {\n    std::time::Instant::now()\n}\n";
    assert_eq!(rules(&lint_lib(src)), vec!["no-wallclock-or-entropy"]);

    let mut cfg = Config::default();
    cfg.wallclock_allow.push("crates/demo/src/timing.rs".into());
    let allowed = lint_source("crates/demo/src/timing.rs", FileKind::Lib, src, &cfg, &[]);
    assert!(allowed.is_empty(), "{allowed:?}");
}

#[test]
fn entropy_imports_are_errors() {
    let diags = lint_lib("use rand::Rng;\n");
    let r = rules(&diags);
    assert!(r.contains(&"no-wallclock-or-entropy"), "{diags:?}");
}

#[test]
fn unwrap_fires_in_lib_not_in_test_mod_and_suppresses() {
    let bad = "pub fn f(v: Vec<u32>) -> u32 {\n    *v.first().unwrap()\n}\n";
    assert_eq!(rules(&lint_lib(bad)), vec!["no-unwrap-in-lib"]);

    // The same call inside #[cfg(test)] is out of scope.
    let test_mod = "#[cfg(test)]\nmod tests {\n    fn f(v: Vec<u32>) -> u32 {\n        *v.first().unwrap()\n    }\n}\n";
    assert!(lint_lib(test_mod).is_empty());

    // A reasoned allow (using the short alias) suppresses it cleanly.
    let allowed = "pub fn f(v: Vec<u32>) -> u32 {\n    // ts3-lint: allow(no-unwrap) caller guarantees non-empty input\n    *v.first().unwrap()\n}\n";
    assert!(lint_lib(allowed).is_empty(), "{:?}", lint_lib(allowed));
}

#[test]
fn fma_policy_fires_only_in_configured_files() {
    let src = "pub fn dot(a: &[f32], b: &[f32]) -> f32 {\n    let mut acc = 0.0;\n    for i in 0..a.len() {\n        acc += a[i] * b[i];\n    }\n    acc\n}\n";
    let mut cfg = Config::default();
    cfg.fma_files.push("crates/demo/src/gemm.rs".into());
    let hot = lint_source("crates/demo/src/gemm.rs", FileKind::Lib, src, &cfg, &[]);
    assert_eq!(rules(&hot), vec!["fma-policy"]);

    // Same code outside the configured hot files: no finding.
    let cold = lint_source("crates/demo/src/lib.rs", FileKind::Lib, src, &cfg, &[]);
    assert!(cold.is_empty(), "{cold:?}");

    // The compliant spelling passes even in hot files.
    let fixed = "pub fn dot(a: &[f32], b: &[f32]) -> f32 {\n    let mut acc = 0.0f32;\n    for i in 0..a.len() {\n        acc = a[i].mul_add(b[i], acc);\n    }\n    acc\n}\n";
    let ok = lint_source("crates/demo/src/gemm.rs", FileKind::Lib, fixed, &cfg, &[]);
    assert!(ok.is_empty(), "{ok:?}");
}

#[test]
fn hermetic_imports_allow_std_ts3_and_locals_only() {
    assert_eq!(rules(&lint_lib("use serde::Serialize;\n")), vec!["hermetic-imports"]);
    assert_eq!(rules(&lint_lib("extern crate libc;\n")), vec!["hermetic-imports"]);
    let ok = "use std::fmt;\nuse core::cell::Cell;\nuse ts3_json::Json;\nuse crate::thing;\nmod parse;\nuse parse::ParseError;\nuse fmt::Write as _;\n";
    assert!(lint_lib(ok).is_empty(), "{:?}", lint_lib(ok));
}

#[test]
fn allow_without_reason_is_an_error() {
    let src = "pub fn f(v: Vec<u32>) -> u32 {\n    // ts3-lint: allow(no-unwrap-in-lib)\n    *v.first().unwrap()\n}\n";
    let diags = lint_lib(src);
    assert!(rules(&diags).contains(&"allow-needs-reason"), "{diags:?}");
    assert!(diags.iter().any(|d| d.severity == Severity::Error));
}

#[test]
fn unused_allow_is_a_warning() {
    let src = "// ts3-lint: allow(no-unwrap-in-lib) nothing here actually unwraps\npub fn f() -> u32 {\n    7\n}\n";
    let diags = lint_lib(src);
    assert_eq!(rules(&diags), vec!["unused-allow"]);
    assert_eq!(diags[0].severity, Severity::Warning);
}

#[test]
fn unknown_rule_in_allow_is_an_error() {
    let src = "// ts3-lint: allow(no-such-rule) because reasons\npub fn f() -> u32 {\n    7\n}\n";
    let diags = lint_lib(src);
    assert!(rules(&diags).contains(&"allow-needs-reason"), "{diags:?}");
}

#[test]
fn trailing_directive_covers_its_own_line() {
    let src = "pub fn f(v: Vec<u32>) -> u32 {\n    *v.first().unwrap() // ts3-lint: allow(no-unwrap) validated above\n}\n";
    assert!(lint_lib(src).is_empty(), "{:?}", lint_lib(src));
}

#[test]
fn rule_selection_restricts_output() {
    let src = "use std::collections::HashMap;\npub fn f(v: Vec<u32>) -> u32 {\n    *v.first().unwrap()\n}\n";
    let only_unwrap = lint_source(
        "crates/demo/src/lib.rs",
        FileKind::Lib,
        src,
        &Config::default(),
        &["no-unwrap-in-lib".to_string()],
    );
    assert_eq!(rules(&only_unwrap), vec!["no-unwrap-in-lib"]);
}

#[test]
fn bin_and_example_code_skips_lib_only_rules() {
    let src = "use std::collections::HashMap;\npub fn f(v: Vec<u32>) -> u32 {\n    *v.first().unwrap()\n}\n";
    let diags = lint_source("src/bin/tool.rs", FileKind::Bin, src, &Config::default(), &[]);
    assert!(diags.is_empty(), "{diags:?}");
}
