//! The committed lint configuration (`ts3lint.json` at the workspace
//! root), parsed with the in-tree `ts3-json` parser.
//!
//! The config carries the *path policy* — which files count as library
//! code, where wall-clock reads are legitimate, which files are under
//! the FMA arithmetic policy — while per-site exemptions live next to
//! the code as `// ts3-lint: allow(rule) reason` directives.

use ts3_json::Json;

/// Parsed lint configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Directories (workspace-relative) to walk for `.rs` files.
    pub roots: Vec<String>,
    /// Directory names skipped anywhere in the walk (e.g. `target`).
    pub skip_dirs: Vec<String>,
    /// Files allowed to read `Instant::now` / `SystemTime::now`: the
    /// timing substrate itself.
    pub wallclock_allow: Vec<String>,
    /// Files under the FMA policy (`a * b + c` float folds must be
    /// `mul_add`).
    pub fma_files: Vec<String>,
    /// Files under the `unsafe-dataflow` rule: every `unsafe { … }`
    /// block must be preceded in-function by a bounds-establishing
    /// `assert!`/`debug_assert!` (or carry a reasoned allow directive).
    pub unsafe_dataflow_files: Vec<String>,
    /// The committed registry of `TS3_*` environment knobs. Every
    /// `std::env::var("TS3_…")` read must name a registered knob, every
    /// registered knob must be read somewhere, and every knob must be
    /// documented in README.md (`env-registry` rule).
    pub env_registry: Vec<String>,
    /// Canonical nested-lock acquisition order, outermost first. Lock
    /// classes are `<file-stem>.<receiver>` (e.g. `par.workers`); the
    /// `lock-order` rule fails on classes missing from this list and on
    /// observed acquisitions that contradict it.
    pub lock_order: Vec<String>,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            roots: vec![
                "crates".into(),
                "src".into(),
                "tests".into(),
                "examples".into(),
            ],
            skip_dirs: vec!["target".into()],
            wallclock_allow: Vec::new(),
            fma_files: Vec::new(),
            unsafe_dataflow_files: Vec::new(),
            env_registry: Vec::new(),
            lock_order: Vec::new(),
        }
    }
}

fn string_list(doc: &Json, key: &str) -> Option<Vec<String>> {
    let arr = doc.get(key)?.as_array()?;
    Some(arr.iter().filter_map(|v| v.as_str().map(str::to_string)).collect())
}

impl Config {
    /// Parse a `ts3.lint.config.v1` document. Unknown keys are ignored;
    /// missing keys keep their defaults, so an empty object is a valid
    /// config.
    pub fn from_json(doc: &Json) -> Result<Config, String> {
        if let Some(schema) = doc.get("schema").and_then(Json::as_str) {
            if schema != "ts3.lint.config.v1" {
                return Err(format!("unsupported config schema `{schema}`"));
            }
        }
        let mut cfg = Config::default();
        if let Some(v) = string_list(doc, "roots") {
            cfg.roots = v;
        }
        if let Some(v) = string_list(doc, "skip_dirs") {
            cfg.skip_dirs = v;
        }
        if let Some(v) = string_list(doc, "wallclock_allow") {
            cfg.wallclock_allow = v;
        }
        if let Some(v) = string_list(doc, "fma_files") {
            cfg.fma_files = v;
        }
        if let Some(v) = string_list(doc, "unsafe_dataflow_files") {
            cfg.unsafe_dataflow_files = v;
        }
        if let Some(v) = string_list(doc, "env_registry") {
            cfg.env_registry = v;
        }
        if let Some(v) = string_list(doc, "lock_order") {
            cfg.lock_order = v;
        }
        Ok(cfg)
    }

    /// Parse config text (see [`Config::from_json`]).
    pub fn parse(text: &str) -> Result<Config, String> {
        let doc = Json::parse(text).map_err(|e| format!("config parse error: {e}"))?;
        Config::from_json(&doc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_object_is_defaults() {
        let cfg = Config::parse("{}").expect("empty config parses");
        assert_eq!(cfg.roots, ["crates", "src", "tests", "examples"]);
        assert!(cfg.wallclock_allow.is_empty());
    }

    #[test]
    fn lists_override_defaults() {
        let cfg = Config::parse(
            r#"{"schema": "ts3.lint.config.v1", "roots": ["x"], "fma_files": ["a.rs"]}"#,
        )
        .expect("config parses");
        assert_eq!(cfg.roots, ["x"]);
        assert_eq!(cfg.fma_files, ["a.rs"]);
    }

    #[test]
    fn graph_rule_lists_parse() {
        let cfg = Config::parse(
            r#"{"schema": "ts3.lint.config.v1",
                "unsafe_dataflow_files": ["a.rs"],
                "env_registry": ["TS3_THREADS"],
                "lock_order": ["par.workers", "par.slot"]}"#,
        )
        .expect("config parses");
        assert_eq!(cfg.unsafe_dataflow_files, ["a.rs"]);
        assert_eq!(cfg.env_registry, ["TS3_THREADS"]);
        assert_eq!(cfg.lock_order, ["par.workers", "par.slot"]);
    }

    #[test]
    fn wrong_schema_is_rejected() {
        assert!(Config::parse(r#"{"schema": "nope"}"#).is_err());
    }
}
