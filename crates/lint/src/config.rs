//! The committed lint configuration (`ts3lint.json` at the workspace
//! root), parsed with the in-tree `ts3-json` parser.
//!
//! The config carries the *path policy* — which files count as library
//! code, where wall-clock reads are legitimate, which files are under
//! the FMA arithmetic policy — while per-site exemptions live next to
//! the code as `// ts3-lint: allow(rule) reason` directives.

use ts3_json::Json;

/// Parsed lint configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Directories (workspace-relative) to walk for `.rs` files.
    pub roots: Vec<String>,
    /// Directory names skipped anywhere in the walk (e.g. `target`).
    pub skip_dirs: Vec<String>,
    /// Files allowed to read `Instant::now` / `SystemTime::now`: the
    /// timing substrate itself.
    pub wallclock_allow: Vec<String>,
    /// Files under the FMA policy (`a * b + c` float folds must be
    /// `mul_add`).
    pub fma_files: Vec<String>,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            roots: vec![
                "crates".into(),
                "src".into(),
                "tests".into(),
                "examples".into(),
            ],
            skip_dirs: vec!["target".into()],
            wallclock_allow: Vec::new(),
            fma_files: Vec::new(),
        }
    }
}

fn string_list(doc: &Json, key: &str) -> Option<Vec<String>> {
    let arr = doc.get(key)?.as_array()?;
    Some(arr.iter().filter_map(|v| v.as_str().map(str::to_string)).collect())
}

impl Config {
    /// Parse a `ts3.lint.config.v1` document. Unknown keys are ignored;
    /// missing keys keep their defaults, so an empty object is a valid
    /// config.
    pub fn from_json(doc: &Json) -> Result<Config, String> {
        if let Some(schema) = doc.get("schema").and_then(Json::as_str) {
            if schema != "ts3.lint.config.v1" {
                return Err(format!("unsupported config schema `{schema}`"));
            }
        }
        let mut cfg = Config::default();
        if let Some(v) = string_list(doc, "roots") {
            cfg.roots = v;
        }
        if let Some(v) = string_list(doc, "skip_dirs") {
            cfg.skip_dirs = v;
        }
        if let Some(v) = string_list(doc, "wallclock_allow") {
            cfg.wallclock_allow = v;
        }
        if let Some(v) = string_list(doc, "fma_files") {
            cfg.fma_files = v;
        }
        Ok(cfg)
    }

    /// Parse config text (see [`Config::from_json`]).
    pub fn parse(text: &str) -> Result<Config, String> {
        let doc = Json::parse(text).map_err(|e| format!("config parse error: {e}"))?;
        Config::from_json(&doc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_object_is_defaults() {
        let cfg = Config::parse("{}").expect("empty config parses");
        assert_eq!(cfg.roots, ["crates", "src", "tests", "examples"]);
        assert!(cfg.wallclock_allow.is_empty());
    }

    #[test]
    fn lists_override_defaults() {
        let cfg = Config::parse(
            r#"{"schema": "ts3.lint.config.v1", "roots": ["x"], "fma_files": ["a.rs"]}"#,
        )
        .expect("config parses");
        assert_eq!(cfg.roots, ["x"]);
        assert_eq!(cfg.fma_files, ["a.rs"]);
    }

    #[test]
    fn wrong_schema_is_rejected() {
        assert!(Config::parse(r#"{"schema": "nope"}"#).is_err());
    }
}
