//! # ts3-lint
//!
//! In-workspace static analysis enforcing the contracts the rest of the
//! workspace merely promises: bit-identical parallelism, uniform FMA
//! arithmetic, hermetic imports, no wall-clock or entropy on
//! deterministic paths, and documented `unsafe`/abort sites.
//!
//! The crate is dependency-free (only `ts3-json`, for reports and
//! config) and deliberately *not* a parser: a line/column-tracking
//! lexer ([`lexer`]) that understands strings, raw strings, char
//! literals vs lifetimes, nested block comments and attributes is
//! enough for every rule here, and keeps the pass fast and robust to
//! code the toolchain itself would reject.
//!
//! ## Rules
//!
//! Per-file rules look at one token stream at a time:
//!
//! | id | contract |
//! |---|---|
//! | `unsafe-needs-safety` | every `unsafe` is preceded by `// SAFETY:` |
//! | `no-hashmap-in-lib` | no `HashMap`/`HashSet` in library code |
//! | `no-wallclock-or-entropy` | no `Instant::now`/`SystemTime::now` outside timing modules; no `rand`/`getrandom` |
//! | `no-unwrap-in-lib` | `.unwrap()`/`.expect(`/`panic!` in lib code need a reasoned allow |
//! | `fma-policy` | `acc += a * b` float folds in hot-loop files must be `mul_add` |
//! | `hermetic-imports` | imports may only name std/core/alloc or `ts3*` crates |
//! | `unsafe-dataflow` | `unsafe { … }` in listed kernel files needs an in-function `assert!`/`debug_assert!` before it |
//! | `env-registry` (file half) | every `std::env::var("TS3_…")` read names a registered knob |
//! | `allow-needs-reason` | every allow directive carries a reason |
//! | `unused-allow` | stale allow directives are reported |
//!
//! Graph rules run over the whole workspace after per-file symbol
//! extraction ([`lint_workspace_v2`]):
//!
//! | id | contract |
//! |---|---|
//! | `crate-layering` | the inter-crate dep DAG respects ARCHITECTURE.md's committed layer block (no back-edges) |
//! | `lock-order` | nested `.lock()` acquisitions agree with the committed `lock_order`, no cycles |
//! | `env-registry` (workspace half) | every registered knob is read somewhere and documented in README.md |
//! | `config-liveness` | every path listed in ts3lint.json exists on disk |
//!
//! ## Suppression
//!
//! ```text
//! // ts3-lint: allow(no-unwrap-in-lib) mutex poisoning means a sibling already panicked
//! let guard = cache.lock().unwrap();
//! ```
//!
//! A directive on its own line covers the next code line; a trailing
//! directive covers its own line. `allow(no-unwrap)` is accepted as an
//! alias for `allow(no-unwrap-in-lib)`. Graph diagnostics anchored at
//! manifest/doc files (`Cargo.toml`, `ARCHITECTURE.md`, `README.md`,
//! `ts3lint.json`) are not suppressible — fix the graph or the
//! committed policy instead.
//!
//! ## Entry points
//!
//! [`lint_workspace_v2`] walks the configured roots, runs both passes
//! and returns a [`LintRun`] (diagnostics, crate DAG, per-rule
//! timings); [`lint_workspace`] is the flat compatibility wrapper. The
//! `ts3lint` binary renders findings rustc-style or as a `ts3.lint.v2`
//! JSON document (`--json`).

pub mod clock;
pub mod config;
pub mod diag;
mod engine;
mod graph;
pub mod lexer;
mod rules;
mod symbols;
pub mod walk;

pub use clock::now_us;
pub use config::Config;
pub use diag::{report, report_v2, Diagnostic, Severity};
pub use engine::{lint_file as lint_tokens, FileCtx, ALL_RULES};
pub use walk::{classify, discover, FileKind, SourceFile};

use std::collections::BTreeMap;
use std::path::Path;

/// Lint a single source text under a workspace-relative identity.
/// Runs the per-file rules only — graph rules need a workspace.
pub fn lint_source(
    rel_path: &str,
    kind: FileKind,
    src: &str,
    cfg: &Config,
    selected: &[String],
) -> Vec<Diagnostic> {
    let ctx = FileCtx::new(rel_path, kind, src, cfg);
    engine::lint_file(&ctx, selected)
}

/// The result of a full two-pass workspace lint.
#[derive(Debug)]
pub struct LintRun {
    /// All surviving diagnostics, sorted by (path, line, col, rule).
    pub diags: Vec<Diagnostic>,
    /// Number of `.rs` files walked.
    pub checked_files: usize,
    /// Resolved inter-crate dependency DAG: crate name → sorted
    /// `ts3*` dependency names (from every workspace `Cargo.toml`).
    pub crate_dag: BTreeMap<String, Vec<String>>,
    /// Wall time spent per rule, microseconds (monotonic clock).
    pub rule_timing_us: BTreeMap<&'static str, u64>,
}

/// Two-pass workspace lint.
///
/// Pass 1 lexes every file, runs the per-file rules and extracts a
/// symbol table (`ts3*` use roots, lock sites, env reads). Pass 2 runs
/// the graph rules over the assembled tables plus the workspace
/// manifests. Allow directives are applied last, so they can suppress
/// graph findings anchored in source files; directive hygiene
/// (`allow-needs-reason`, `unused-allow`) closes the run.
///
/// `selected` restricts to the named rules; empty runs everything.
pub fn lint_workspace_v2(
    workspace_root: &Path,
    cfg: &Config,
    selected: &[String],
) -> std::io::Result<LintRun> {
    let files = discover(workspace_root, cfg)?;
    let mut diags = Vec::new();
    let mut timing: engine::RuleTiming = BTreeMap::new();
    for rule in ALL_RULES {
        if selected.is_empty() || selected.iter().any(|s| s == rule) {
            timing.insert(rule, 0);
        }
    }

    let mut tables = Vec::with_capacity(files.len());
    for f in &files {
        let src = std::fs::read_to_string(&f.abs_path)?;
        let mut ctx = FileCtx::new(&f.rel_path, f.kind, &src, cfg);
        engine::run_file_rules(&ctx, selected, &mut diags, &mut timing);
        tables.push(symbols::extract(&mut ctx));
    }

    let crate_dag = graph::run(workspace_root, cfg, &tables, selected, &mut diags, &mut timing);

    let t0 = now_us();
    for t in &tables {
        engine::apply_directives(&t.directives, &t.rel_path, &mut diags);
        engine::directive_hygiene(&t.rel_path, &t.directives, selected, &mut diags);
    }
    let spent = now_us() - t0;
    for rule in ["allow-needs-reason", "unused-allow"] {
        if let Some(slot) = timing.get_mut(rule) {
            *slot += spent / 2;
        }
    }

    diags.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.rule).cmp(&(b.path.as_str(), b.line, b.col, b.rule))
    });
    Ok(LintRun { diags, checked_files: files.len(), crate_dag, rule_timing_us: timing })
}

/// Lint every `.rs` file under the configured roots of
/// `workspace_root`. Returns the diagnostics (sorted by path, then
/// position) and the number of files checked.
///
/// Compatibility wrapper over [`lint_workspace_v2`].
pub fn lint_workspace(
    workspace_root: &Path,
    cfg: &Config,
    selected: &[String],
) -> std::io::Result<(Vec<Diagnostic>, usize)> {
    let run = lint_workspace_v2(workspace_root, cfg, selected)?;
    Ok((run.diags, run.checked_files))
}
