//! # ts3-lint
//!
//! In-workspace static analysis enforcing the contracts the rest of the
//! workspace merely promises: bit-identical parallelism, uniform FMA
//! arithmetic, hermetic imports, no wall-clock or entropy on
//! deterministic paths, and documented `unsafe`/abort sites.
//!
//! The crate is dependency-free (only `ts3-json`, for reports and
//! config) and deliberately *not* a parser: a line/column-tracking
//! lexer ([`lexer`]) that understands strings, raw strings, char
//! literals vs lifetimes, nested block comments and attributes is
//! enough for every rule here, and keeps the pass fast and robust to
//! code the toolchain itself would reject.
//!
//! ## Rules
//!
//! | id | contract |
//! |---|---|
//! | `unsafe-needs-safety` | every `unsafe` is preceded by `// SAFETY:` |
//! | `no-hashmap-in-lib` | no `HashMap`/`HashSet` in library code |
//! | `no-wallclock-or-entropy` | no `Instant::now`/`SystemTime::now` outside timing modules; no `rand`/`getrandom` |
//! | `no-unwrap-in-lib` | `.unwrap()`/`.expect(`/`panic!` in lib code need a reasoned allow |
//! | `fma-policy` | `acc += a * b` float folds in hot-loop files must be `mul_add` |
//! | `hermetic-imports` | imports may only name std/core/alloc or `ts3*` crates |
//! | `allow-needs-reason` | every allow directive carries a reason |
//! | `unused-allow` | stale allow directives are reported |
//!
//! ## Suppression
//!
//! ```text
//! // ts3-lint: allow(no-unwrap-in-lib) mutex poisoning means a sibling already panicked
//! let guard = cache.lock().unwrap();
//! ```
//!
//! A directive on its own line covers the next code line; a trailing
//! directive covers its own line. `allow(no-unwrap)` is accepted as an
//! alias for `allow(no-unwrap-in-lib)`.
//!
//! ## Entry points
//!
//! [`lint_workspace`] walks the configured roots and returns
//! diagnostics plus the file count; the `ts3lint` binary renders them
//! rustc-style or as a `ts3.lint.v1` JSON document (`--json`).

pub mod config;
pub mod diag;
mod engine;
pub mod lexer;
mod rules;
pub mod walk;

pub use config::Config;
pub use diag::{report, Diagnostic, Severity};
pub use engine::{lint_file as lint_tokens, FileCtx, ALL_RULES};
pub use walk::{classify, discover, FileKind, SourceFile};

use std::path::Path;

/// Lint a single source text under a workspace-relative identity.
pub fn lint_source(
    rel_path: &str,
    kind: FileKind,
    src: &str,
    cfg: &Config,
    selected: &[String],
) -> Vec<Diagnostic> {
    let ctx = FileCtx::new(rel_path, kind, src, cfg);
    engine::lint_file(&ctx, selected)
}

/// Lint every `.rs` file under the configured roots of
/// `workspace_root`. Returns the diagnostics (sorted by path, then
/// position) and the number of files checked.
///
/// `selected` restricts to the named rules; empty runs everything.
pub fn lint_workspace(
    workspace_root: &Path,
    cfg: &Config,
    selected: &[String],
) -> std::io::Result<(Vec<Diagnostic>, usize)> {
    let files = discover(workspace_root, cfg)?;
    let mut diags = Vec::new();
    for f in &files {
        let src = std::fs::read_to_string(&f.abs_path)?;
        diags.extend(lint_source(&f.rel_path, f.kind, &src, cfg, selected));
    }
    Ok((diags, files.len()))
}
