//! `ts3lint` — run the workspace static-analysis pass.
//!
//! ```text
//! ts3lint [--root DIR] [--config FILE] [--rule NAME]... \
//!         [--json [FILE]] [--bench-out FILE] [--deny-all] [--list-rules]
//! ```
//!
//! * `--root DIR`      workspace root (default: nearest ancestor of the
//!   current directory containing `ts3lint.json`, else `.`)
//! * `--config FILE`   lint config (default: `<root>/ts3lint.json`)
//! * `--rule NAME`     run only the named rule(s); repeatable
//! * `--json [FILE]`   emit the `ts3.lint.v2` report as JSON to FILE
//!   (or stdout when FILE is omitted/`-`) instead of rustc-style text
//! * `--bench-out FILE` write a `ts3.bench.v1` document with the lint
//!   wall time (`lint/wall_ms`) and diagnostic count
//!   (`lint/diagnostics`), for `bench_compare` regression gating
//! * `--deny-all`      treat warnings as errors for the exit status
//! * `--list-rules`    print the rule ids and exit
//!
//! Exit status: 0 on a clean tree, 1 when diagnostics fail the run,
//! 2 on usage or I/O errors.

use std::path::PathBuf;
use std::process::ExitCode;
use ts3_json::Json;
use ts3_lint::{lint_workspace_v2, now_us, report_v2, Config, Severity, ALL_RULES};

fn usage() -> ExitCode {
    eprintln!(
        "usage: ts3lint [--root DIR] [--config FILE] [--rule NAME]... \
         [--json [FILE]] [--bench-out FILE] [--deny-all] [--list-rules]"
    );
    ExitCode::from(2)
}

/// One `ts3.bench.v1` entry; the measurement lands in `median_ns` (the
/// key `bench_compare` reads) with the quartile fields collapsed onto
/// it, since a lint run is a single observation.
fn bench_entry(op: &str, shape: &str, value: u64) -> Json {
    Json::obj([
        ("op", Json::from(op)),
        ("shape", Json::from(shape)),
        ("median_ns", Json::from(value)),
        ("p25_ns", Json::from(value)),
        ("p75_ns", Json::from(value)),
        ("min_ns", Json::from(value)),
        ("iters", Json::from(1usize)),
    ])
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut config_path: Option<PathBuf> = None;
    let mut rules: Vec<String> = Vec::new();
    let mut json_out: Option<String> = None;
    let mut bench_out: Option<String> = None;
    let mut deny_all = false;

    let mut args = std::env::args().skip(1).peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = Some(PathBuf::from(v)),
                None => return usage(),
            },
            "--config" => match args.next() {
                Some(v) => config_path = Some(PathBuf::from(v)),
                None => return usage(),
            },
            "--rule" => match args.next() {
                Some(v) => rules.push(v),
                None => return usage(),
            },
            "--json" => {
                // Optional operand: a following token that is not a flag.
                let file = match args.peek() {
                    Some(v) if !v.starts_with("--") => args.next(),
                    _ => None,
                };
                json_out = Some(file.unwrap_or_else(|| "-".to_string()));
            }
            "--bench-out" => match args.next() {
                Some(v) => bench_out = Some(v),
                None => return usage(),
            },
            "--deny-all" => deny_all = true,
            "--list-rules" => {
                for r in ALL_RULES {
                    println!("{r}");
                }
                return ExitCode::SUCCESS;
            }
            _ => return usage(),
        }
    }

    if let Some(bad) = rules.iter().find(|r| !ALL_RULES.contains(&r.as_str())) {
        eprintln!("ts3lint: unknown rule `{bad}` (see --list-rules)");
        return ExitCode::from(2);
    }

    let root = root.unwrap_or_else(find_root);
    let config_path = config_path.unwrap_or_else(|| root.join("ts3lint.json"));
    let cfg = if config_path.is_file() {
        match std::fs::read_to_string(&config_path)
            .map_err(|e| e.to_string())
            .and_then(|text| Config::parse(&text))
        {
            Ok(cfg) => cfg,
            Err(e) => {
                eprintln!("ts3lint: {}: {e}", config_path.display());
                return ExitCode::from(2);
            }
        }
    } else {
        Config::default()
    };

    let t0 = now_us();
    let run = match lint_workspace_v2(&root, &cfg, &rules) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("ts3lint: {e}");
            return ExitCode::from(2);
        }
    };
    let wall_us = now_us() - t0;
    let (diags, checked) = (run.diags, run.checked_files);

    let failing = diags
        .iter()
        .filter(|d| deny_all || d.severity == Severity::Error)
        .count();

    if let Some(dest) = bench_out {
        let doc = Json::obj([
            ("schema", Json::from("ts3.bench.v1")),
            ("threads", Json::from(1usize)),
            (
                "entries",
                Json::Arr(vec![
                    bench_entry("lint", "wall_ms", wall_us * 1_000),
                    bench_entry("lint", "diagnostics", diags.len() as u64),
                ]),
            ),
        ]);
        if let Err(e) = std::fs::write(&dest, doc.to_string()) {
            eprintln!("ts3lint: write {dest}: {e}");
            return ExitCode::from(2);
        }
    }

    if let Some(dest) = json_out {
        let selected: Vec<&str> = if rules.is_empty() {
            ALL_RULES.to_vec()
        } else {
            rules.iter().map(String::as_str).collect()
        };
        let doc = report_v2(
            &diags,
            checked,
            &selected,
            deny_all,
            &run.crate_dag,
            &run.rule_timing_us,
        );
        let text = doc.to_string();
        if dest == "-" {
            println!("{text}");
        } else if let Err(e) = std::fs::write(&dest, text) {
            eprintln!("ts3lint: write {dest}: {e}");
            return ExitCode::from(2);
        }
    } else {
        for d in &diags {
            print!("{}", d.render());
        }
        let errors = failing;
        let warnings = diags.len() - errors;
        println!(
            "ts3lint: {checked} files, {errors} error{}, {warnings} warning{}{}",
            if errors == 1 { "" } else { "s" },
            if warnings == 1 { "" } else { "s" },
            if deny_all { " (deny-all)" } else { "" },
        );
    }

    if failing > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Nearest ancestor of the current directory holding `ts3lint.json`,
/// so the binary works from crate subdirectories; falls back to `.`.
fn find_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if dir.join("ts3lint.json").is_file() {
            return dir;
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}
