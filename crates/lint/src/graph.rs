//! Pass 2 of the workspace analysis: rules over the assembled
//! crate/lock/env graphs.
//!
//! * **crate-layering** — the inter-crate dependency DAG (parsed from
//!   every `Cargo.toml`, cross-checked against `ts3*` path roots in the
//!   sources) must respect the layer order committed in
//!   ARCHITECTURE.md's machine-readable `<!-- ts3lint:layers … -->`
//!   block: a crate may only depend on strictly lower layers, so a
//!   back-edge (`ts3-signal` growing a dependency on `ts3-serve`) fails
//!   the lint instead of silently inverting the architecture.
//! * **lock-order** — `.lock()` sites are grouped per function; the
//!   site order within a function over-approximates nesting order, and
//!   every observed edge must agree with the committed canonical order
//!   (`ts3lint.json` `lock_order`, outermost first). Unknown lock
//!   classes and acquisition cycles are errors.
//! * **env-registry** (workspace half) — every registered `TS3_*` knob
//!   must actually be read somewhere and must appear in README.md; the
//!   per-file half (reads must be registered) lives in
//!   [`crate::rules::env_registry`].
//! * **config-liveness** — every path listed in `ts3lint.json`
//!   (`wallclock_allow`, `fma_files`, `unsafe_dataflow_files`) must
//!   exist on disk, so renamed files cannot silently drop out of
//!   policy.

use crate::clock::now_us;
use crate::config::Config;
use crate::diag::{Diagnostic, Severity};
use crate::engine::RuleTiming;
use crate::symbols::FileSymbols;
use std::collections::BTreeMap;
use std::path::Path;

/// One parsed workspace manifest.
#[derive(Debug)]
struct Manifest {
    /// Crate name from `[package]`.
    name: String,
    /// Workspace-relative directory (`crates/tensor`; empty for the
    /// root package).
    dir: String,
    /// Workspace-relative manifest path, for diagnostics.
    path: String,
    /// `ts3*` dependency names with the line each was declared on
    /// (normal, dev and build sections alike — dev edges are layering
    /// edges too: a low-layer crate must not pull a high-layer crate
    /// even for its tests).
    deps: Vec<(String, u32)>,
}

/// The resolved crate dependency DAG, for the `ts3.lint.v2` report:
/// crate name → sorted dependency names.
pub type CrateDag = BTreeMap<String, Vec<String>>;

fn diag_at(
    rule: &'static str,
    path: &str,
    line: u32,
    col: u32,
    message: String,
    help: String,
) -> Diagnostic {
    Diagnostic { rule, severity: Severity::Error, path: path.to_string(), line, col, message, help }
}

/// Run every selected graph rule; returns the crate DAG for the
/// report (empty when no manifest parsed).
pub(crate) fn run(
    root: &Path,
    cfg: &Config,
    symbols: &[FileSymbols],
    selected: &[String],
    diags: &mut Vec<Diagnostic>,
    timing: &mut RuleTiming,
) -> CrateDag {
    let run = |id: &str| selected.is_empty() || selected.iter().any(|s| s == id);
    let manifests = load_manifests(root);
    let dag: CrateDag = manifests
        .iter()
        .map(|m| {
            let mut deps: Vec<String> = m.deps.iter().map(|(d, _)| d.clone()).collect();
            deps.sort();
            deps.dedup();
            (m.name.clone(), deps)
        })
        .collect();

    if run("crate-layering") {
        let t0 = now_us();
        crate_layering(root, &manifests, symbols, diags);
        *timing.entry("crate-layering").or_insert(0) += now_us() - t0;
    }
    if run("lock-order") {
        let t0 = now_us();
        lock_order(cfg, symbols, diags);
        *timing.entry("lock-order").or_insert(0) += now_us() - t0;
    }
    if run("env-registry") {
        let t0 = now_us();
        env_registry_workspace(root, cfg, symbols, diags);
        *timing.entry("env-registry").or_insert(0) += now_us() - t0;
    }
    if run("config-liveness") {
        let t0 = now_us();
        config_liveness(root, cfg, diags);
        *timing.entry("config-liveness").or_insert(0) += now_us() - t0;
    }
    dag
}

// ---------------------------------------------------------------------------
// Manifest and layer-block parsing.

/// Read the root `Cargo.toml` plus every `crates/*/Cargo.toml`.
/// Unreadable or package-less manifests are skipped — the layering rule
/// then reports the crates that went missing from the layer map.
fn load_manifests(root: &Path) -> Vec<Manifest> {
    let mut out = Vec::new();
    let mut push = |dir: String, rel: String| {
        if let Ok(text) = std::fs::read_to_string(root.join(&rel)) {
            if let Some(m) = parse_manifest(&dir, &rel, &text) {
                out.push(m);
            }
        }
    };
    push(String::new(), "Cargo.toml".to_string());
    let crates_dir = root.join("crates");
    let mut subdirs: Vec<String> = std::fs::read_dir(&crates_dir)
        .map(|rd| {
            rd.filter_map(|e| e.ok())
                .filter(|e| e.path().is_dir())
                .filter_map(|e| e.file_name().into_string().ok())
                .collect()
        })
        .unwrap_or_default();
    subdirs.sort();
    for d in subdirs {
        push(format!("crates/{d}"), format!("crates/{d}/Cargo.toml"));
    }
    out
}

/// Line-oriented parse of the sections this rule needs: `[package]
/// name`, and `ts3*` keys under `[dependencies]` /
/// `[dev-dependencies]` / `[build-dependencies]`. (The root manifest's
/// `[workspace.dependencies]` section is a declaration list, not an
/// edge set, and is deliberately not matched.)
fn parse_manifest(dir: &str, rel: &str, text: &str) -> Option<Manifest> {
    let mut name = None;
    let mut deps = Vec::new();
    let mut section = String::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.starts_with('[') {
            section = line.to_string();
            continue;
        }
        if section == "[package]" && name.is_none() {
            if let Some(rest) = line.strip_prefix("name") {
                let rest = rest.trim_start().strip_prefix('=').unwrap_or(rest);
                name = rest.split('"').nth(1).map(str::to_string);
            }
        }
        if matches!(
            section.as_str(),
            "[dependencies]" | "[dev-dependencies]" | "[build-dependencies]"
        ) && line.starts_with("ts3")
        {
            let key: String = line
                .chars()
                .take_while(|c| !matches!(c, ' ' | '.' | '=' | '\t'))
                .collect();
            if !key.is_empty() {
                deps.push((key, idx as u32 + 1));
            }
        }
    }
    Some(Manifest { name: name?, dir: dir.to_string(), path: rel.to_string(), deps })
}

/// Parse ARCHITECTURE.md's machine-readable layer block:
///
/// ```text
/// <!-- ts3lint:layers
/// 0: ts3-rng
/// 1: ts3-json
/// …
/// -->
/// ```
///
/// Returns crate name → layer number.
fn parse_layers(text: &str) -> Option<BTreeMap<String, usize>> {
    let mut layers = BTreeMap::new();
    let mut in_block = false;
    let mut seen_block = false;
    for raw in text.lines() {
        let line = raw.trim();
        if line == "<!-- ts3lint:layers" {
            in_block = true;
            seen_block = true;
            continue;
        }
        if !in_block {
            continue;
        }
        if line == "-->" {
            in_block = false;
            continue;
        }
        let Some((num, names)) = line.split_once(':') else { continue };
        let Ok(layer) = num.trim().parse::<usize>() else { continue };
        for name in names.split_whitespace() {
            layers.insert(name.to_string(), layer);
        }
    }
    seen_block.then_some(layers)
}

// ---------------------------------------------------------------------------
// crate-layering.

fn crate_layering(
    root: &Path,
    manifests: &[Manifest],
    symbols: &[FileSymbols],
    diags: &mut Vec<Diagnostic>,
) {
    let arch = std::fs::read_to_string(root.join("ARCHITECTURE.md")).unwrap_or_default();
    let Some(layers) = parse_layers(&arch) else {
        diags.push(diag_at(
            "crate-layering",
            "ARCHITECTURE.md",
            1,
            1,
            "no machine-readable `<!-- ts3lint:layers … -->` block found".to_string(),
            "commit the crate layer map; the crate-layering rule enforces it against \
             every Cargo.toml and use site"
                .to_string(),
        ));
        return;
    };
    let known: Vec<&str> = manifests.iter().map(|m| m.name.as_str()).collect();
    for name in layers.keys() {
        if !known.contains(&name.as_str()) {
            diags.push(diag_at(
                "crate-layering",
                "ARCHITECTURE.md",
                1,
                1,
                format!("layer block names `{name}`, which is not a workspace crate"),
                "remove the stale entry or fix the spelling".to_string(),
            ));
        }
    }
    for m in manifests {
        let Some(&my_layer) = layers.get(&m.name) else {
            diags.push(diag_at(
                "crate-layering",
                &m.path,
                1,
                1,
                format!("crate `{}` is missing from ARCHITECTURE.md's layer block", m.name),
                "assign it a layer in the `<!-- ts3lint:layers … -->` block".to_string(),
            ));
            continue;
        };
        for (dep, line) in &m.deps {
            let Some(&dep_layer) = layers.get(dep) else { continue };
            if dep_layer >= my_layer {
                diags.push(diag_at(
                    "crate-layering",
                    &m.path,
                    *line,
                    1,
                    format!(
                        "layering back-edge: `{}` (layer {my_layer}) depends on `{dep}` \
                         (layer {dep_layer})",
                        m.name
                    ),
                    "a crate may only depend on strictly lower layers; move the shared \
                     code down or update the committed layer map deliberately"
                        .to_string(),
                ));
            }
        }
    }
    // Source-level edges: `ts3_x::…` roots must also respect the map —
    // this catches dependencies that reach around Cargo.toml (or a
    // manifest edit the lint run raced with).
    for fs in symbols {
        let from = crate_of_file(&fs.rel_path, manifests);
        let Some(from) = from else { continue };
        let Some(&from_layer) = layers.get(from) else { continue };
        for u in &fs.ts3_uses {
            let dep = u.root.replace('_', "-");
            if dep == from || !known.contains(&dep.as_str()) {
                continue;
            }
            let Some(&dep_layer) = layers.get(&dep) else { continue };
            if dep_layer >= from_layer {
                diags.push(diag_at(
                    "crate-layering",
                    &fs.rel_path,
                    u.line,
                    u.col,
                    format!(
                        "layering back-edge: `{from}` (layer {from_layer}) uses `{dep}` \
                         (layer {dep_layer})"
                    ),
                    "a crate may only use strictly lower layers (see ARCHITECTURE.md's \
                     layer block)"
                        .to_string(),
                ));
            }
        }
    }
}

/// Which workspace crate owns a source file: longest matching manifest
/// directory prefix, the root package for root-level `src/`, `tests/`
/// and `examples/` files.
fn crate_of_file<'a>(rel_path: &str, manifests: &'a [Manifest]) -> Option<&'a str> {
    let mut best: Option<&Manifest> = None;
    for m in manifests {
        if m.dir.is_empty() {
            if best.is_none() {
                best = Some(m);
            }
        } else if rel_path.starts_with(&format!("{}/", m.dir))
            && best.is_none_or(|b| m.dir.len() > b.dir.len())
        {
            best = Some(m);
        }
    }
    best.map(|m| m.name.as_str())
}

// ---------------------------------------------------------------------------
// lock-order.

fn lock_order(cfg: &Config, symbols: &[FileSymbols], diags: &mut Vec<Diagnostic>) {
    let pos = |class: &str| cfg.lock_order.iter().position(|c| c == class);
    // Observed nesting edges: (outer, inner) → anchor site, deduped.
    let mut edges: BTreeMap<(String, String), (String, u32, u32)> = BTreeMap::new();
    for fs in symbols {
        for s in &fs.lock_sites {
            if pos(&s.class).is_none() {
                diags.push(diag_at(
                    "lock-order",
                    &fs.rel_path,
                    s.line,
                    s.col,
                    format!("lock class `{}` is not in the committed lock_order list", s.class),
                    "add it to `lock_order` in ts3lint.json at its place in the \
                     outermost-first acquisition order"
                        .to_string(),
                ));
            }
        }
        // Within one function, site order over-approximates nesting:
        // every earlier-acquired class is treated as potentially still
        // held at each later site.
        for (i, a) in fs.lock_sites.iter().enumerate() {
            for b in fs.lock_sites.iter().skip(i + 1) {
                if a.fn_idx != b.fn_idx || a.fn_idx.is_none() || a.class == b.class {
                    continue;
                }
                edges
                    .entry((a.class.clone(), b.class.clone()))
                    .or_insert((fs.rel_path.clone(), b.line, b.col));
            }
        }
    }
    for ((outer, inner), (path, line, col)) in &edges {
        if let (Some(po), Some(pi)) = (pos(outer), pos(inner)) {
            if po > pi {
                diags.push(diag_at(
                    "lock-order",
                    path,
                    *line,
                    *col,
                    format!(
                        "`{inner}` acquired while `{outer}` may be held, inverting the \
                         committed order ({inner} is outer-than {outer})"
                    ),
                    "acquire locks in the ts3lint.json `lock_order` sequence, or fix \
                     the committed order if the design changed"
                        .to_string(),
                ));
            }
        }
    }
    // Cycle check over the observed edge set — mostly redundant with a
    // consistent total order, but it catches contradictory edges when
    // classes are missing from the committed list.
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (outer, inner) in edges.keys() {
        adj.entry(outer.as_str()).or_default().push(inner.as_str());
    }
    let nodes: Vec<&str> = adj.keys().copied().collect();
    for &start in &nodes {
        let mut stack = vec![start];
        let mut seen: Vec<&str> = Vec::new();
        while let Some(n) = stack.pop() {
            for &next in adj.get(n).map(Vec::as_slice).unwrap_or(&[]) {
                if next == start {
                    let (path, line, col) =
                        &edges[&(n.to_string(), next.to_string())];
                    diags.push(diag_at(
                        "lock-order",
                        path,
                        *line,
                        *col,
                        format!("nested lock acquisition cycle through `{start}`"),
                        "two functions acquire these lock classes in opposite orders; \
                         pick one order and fix the other site"
                            .to_string(),
                    ));
                    stack.clear();
                    break;
                }
                if !seen.contains(&next) {
                    seen.push(next);
                    stack.push(next);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// env-registry (workspace half) and config-liveness.

fn env_registry_workspace(
    root: &Path,
    cfg: &Config,
    symbols: &[FileSymbols],
    diags: &mut Vec<Diagnostic>,
) {
    let readme = std::fs::read_to_string(root.join("README.md")).unwrap_or_default();
    let read_names: Vec<&str> = symbols
        .iter()
        .flat_map(|fs| fs.env_reads.iter().map(|r| r.name.as_str()))
        .collect();
    for knob in &cfg.env_registry {
        if !read_names.contains(&knob.as_str()) {
            diags.push(diag_at(
                "env-registry",
                "ts3lint.json",
                1,
                1,
                format!("registered env knob `{knob}` is never read in the workspace"),
                "delete the dead registry entry (and its README row) or wire the knob up"
                    .to_string(),
            ));
        }
        if !readme.contains(knob.as_str()) {
            diags.push(diag_at(
                "env-registry",
                "README.md",
                1,
                1,
                format!("registered env knob `{knob}` is not documented in README.md"),
                "add it to the README environment-knob table".to_string(),
            ));
        }
    }
}

fn config_liveness(root: &Path, cfg: &Config, diags: &mut Vec<Diagnostic>) {
    let lists: [(&str, &[String]); 3] = [
        ("wallclock_allow", &cfg.wallclock_allow),
        ("fma_files", &cfg.fma_files),
        ("unsafe_dataflow_files", &cfg.unsafe_dataflow_files),
    ];
    for (list, paths) in lists {
        for p in paths {
            if !root.join(p).is_file() {
                diags.push(diag_at(
                    "config-liveness",
                    "ts3lint.json",
                    1,
                    1,
                    format!("`{p}` in `{list}` does not exist on disk"),
                    "the file was moved or deleted; update ts3lint.json so the policy \
                     list cannot silently rot"
                        .to_string(),
                ));
            }
        }
    }
}
