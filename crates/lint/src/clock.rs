//! Monotonic microsecond clock for per-rule timing in the
//! `ts3.lint.v2` report.
//!
//! The lint pass is tooling, not a deterministic kernel, so it is
//! allowed to observe time — but only through this one module, which is
//! itself on the `wallclock_allow` list. Keeping the `Instant` tokens
//! here means the rest of the crate stays clean under its own
//! `no-wallclock-or-entropy` rule.

use std::sync::OnceLock;
use std::time::Instant;

static START: OnceLock<Instant> = OnceLock::new();

/// Microseconds since the first call in this process. Monotonic and
/// cheap; used to attribute wall time to individual rules and to the
/// `lint/wall_ms` bench row.
pub fn now_us() -> u64 {
    let start = START.get_or_init(Instant::now);
    start.elapsed().as_micros() as u64
}
