//! Diagnostics: the finding type, rustc-style text rendering, and the
//! `ts3.lint.v1` / `ts3.lint.v2` JSON reports.

use std::collections::BTreeMap;
use ts3_json::Json;

/// How severe a finding is. `--deny-all` promotes warnings to errors at
/// reporting time; the engine itself keeps the distinction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Fails the lint run.
    Error,
    /// Reported, but only fails under `--deny-all`.
    Warning,
}

impl Severity {
    /// Lower-case label used in both renderings.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        }
    }
}

/// One finding at one source position.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Rule identifier (e.g. `unsafe-needs-safety`).
    pub rule: &'static str,
    /// Severity before any `--deny-all` promotion.
    pub severity: Severity,
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human message ("what and why"), no trailing period needed.
    pub message: String,
    /// How to silence or fix, shown as a `help:` line.
    pub help: String,
}

impl Diagnostic {
    /// Render rustc-style:
    ///
    /// ```text
    /// error[unsafe-needs-safety]: unsafe block without a `// SAFETY:` comment
    ///   --> crates/tensor/src/par.rs:273:58
    ///    = help: document the invariant the block relies on
    /// ```
    pub fn render(&self) -> String {
        format!(
            "{}[{}]: {}\n  --> {}:{}:{}\n   = help: {}\n",
            self.severity.label(),
            self.rule,
            self.message,
            self.path,
            self.line,
            self.col,
            self.help
        )
    }

    /// Lower to one `ts3.lint.v1` diagnostics entry.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("rule", Json::from(self.rule)),
            ("severity", Json::from(self.severity.label())),
            ("path", Json::from(self.path.as_str())),
            ("line", Json::from(self.line as usize)),
            ("col", Json::from(self.col as usize)),
            ("message", Json::from(self.message.as_str())),
            ("help", Json::from(self.help.as_str())),
        ])
    }
}

/// Build the full `ts3.lint.v1` report document.
///
/// `deny_all` is recorded so a consumer knows which policy produced the
/// exit status; `checked_files` makes "0 diagnostics" distinguishable
/// from "0 files walked".
pub fn report(
    diags: &[Diagnostic],
    checked_files: usize,
    rules: &[&str],
    deny_all: bool,
) -> Json {
    let errors = diags.iter().filter(|d| d.severity == Severity::Error).count();
    let warnings = diags.len() - errors;
    Json::obj([
        ("schema", Json::from("ts3.lint.v1")),
        ("deny_all", Json::from(deny_all)),
        ("checked_files", Json::from(checked_files)),
        ("rules", Json::Arr(rules.iter().map(|r| Json::from(*r)).collect())),
        ("diagnostics", Json::Arr(diags.iter().map(Diagnostic::to_json).collect())),
        (
            "summary",
            Json::obj([
                ("errors", Json::from(errors)),
                ("warnings", Json::from(warnings)),
            ]),
        ),
    ])
}

/// Build the `ts3.lint.v2` report document: everything `ts3.lint.v1`
/// carries, plus the resolved crate dependency DAG and per-rule wall
/// times. `trace_check --lint` validates this schema in the verify
/// pipeline.
pub fn report_v2(
    diags: &[Diagnostic],
    checked_files: usize,
    rules: &[&str],
    deny_all: bool,
    crate_dag: &BTreeMap<String, Vec<String>>,
    rule_timing_us: &BTreeMap<&'static str, u64>,
) -> Json {
    let errors = diags.iter().filter(|d| d.severity == Severity::Error).count();
    let warnings = diags.len() - errors;
    let dag = Json::Obj(
        crate_dag
            .iter()
            .map(|(name, deps)| {
                (
                    name.clone(),
                    Json::Arr(deps.iter().map(|d| Json::from(d.as_str())).collect()),
                )
            })
            .collect(),
    );
    let timing = Json::Obj(
        rule_timing_us
            .iter()
            .map(|(rule, us)| ((*rule).to_string(), Json::from(*us)))
            .collect(),
    );
    Json::obj([
        ("schema", Json::from("ts3.lint.v2")),
        ("deny_all", Json::from(deny_all)),
        ("checked_files", Json::from(checked_files)),
        ("rules", Json::Arr(rules.iter().map(|r| Json::from(*r)).collect())),
        ("crate_dag", dag),
        ("rule_timing_us", timing),
        ("diagnostics", Json::Arr(diags.iter().map(Diagnostic::to_json).collect())),
        (
            "summary",
            Json::obj([
                ("errors", Json::from(errors)),
                ("warnings", Json::from(warnings)),
            ]),
        ),
    ])
}
