//! The rule engine: per-file token analysis context, inline
//! `// ts3-lint: allow(rule) reason` directives, `#[cfg(test)]` span
//! tracking, and suppression bookkeeping.

use crate::clock::now_us;
use crate::config::Config;
use crate::diag::{Diagnostic, Severity};
use crate::lexer::{lex, TokKind, Token};
use crate::rules;
use crate::walk::FileKind;
use std::cell::Cell;
use std::collections::BTreeMap;

/// Every rule id, in reporting order: eight per-file contract rules,
/// three workspace-graph rules (which only run under
/// [`crate::lint_workspace_v2`] — they need the whole file set), the
/// config cross-check, and the two directive meta-rules.
pub const ALL_RULES: &[&str] = &[
    "unsafe-needs-safety",
    "no-hashmap-in-lib",
    "no-wallclock-or-entropy",
    "no-unwrap-in-lib",
    "fma-policy",
    "hermetic-imports",
    "unsafe-dataflow",
    "env-registry",
    "crate-layering",
    "lock-order",
    "config-liveness",
    "allow-needs-reason",
    "unused-allow",
];

/// Accumulated wall time per rule id, in microseconds.
pub(crate) type RuleTiming = BTreeMap<&'static str, u64>;

/// Marker accepted as a safety justification: the canonical `// SAFETY:`
/// comment or a rustdoc `# Safety` section heading.
pub(crate) const SAFETY_MARKERS: &[&str] = &["SAFETY:", "# Safety"];

/// One parsed `ts3-lint: allow(...)` directive.
#[derive(Debug)]
pub(crate) struct Directive {
    /// Rules this directive may suppress.
    pub rules: Vec<String>,
    /// Whether free text (the reason) followed the closing paren.
    pub has_reason: bool,
    /// Line/col of the comment carrying the directive.
    pub line: u32,
    pub col: u32,
    /// Line whose diagnostics this directive suppresses: its own line
    /// for trailing comments, the next code line for standalone ones.
    pub target_line: u32,
    /// Set when the directive suppressed at least one diagnostic.
    pub used: Cell<bool>,
}

/// Per-line facts precomputed from the token stream (index 0 unused;
/// lines are 1-based).
#[derive(Debug, Default, Clone)]
pub(crate) struct LineInfo {
    /// Line holds at least one non-comment token.
    pub has_code: bool,
    /// First non-comment token on the line is `#` (attribute line).
    pub attr_start: bool,
    /// Indices (into the token vec) of comments touching this line;
    /// multi-line block comments are recorded on every covered line.
    pub comments: Vec<usize>,
}

/// Token extent of one `fn` body: indices (into the token vec) of the
/// opening and closing braces. Nested functions produce nested spans;
/// the innermost containing span is "the enclosing function".
#[derive(Debug, Clone, Copy)]
pub(crate) struct FnSpan {
    pub open: usize,
    pub close: usize,
}

/// Everything a rule needs to inspect one file.
pub struct FileCtx<'a> {
    /// Workspace-relative path.
    pub rel_path: &'a str,
    /// File role (lib / bin / test).
    pub kind: FileKind,
    /// Full token stream, comments included.
    pub tokens: Vec<Token>,
    /// Per-line facts; see [`LineInfo`].
    pub(crate) lines: Vec<LineInfo>,
    /// Line ranges covered by `#[cfg(test)]` / `#[test]` items.
    pub(crate) test_spans: Vec<(u32, u32)>,
    /// Body extents of every `fn` item, for dataflow-ish rules and
    /// per-function lock-site grouping.
    pub(crate) fn_spans: Vec<FnSpan>,
    /// Workspace configuration.
    pub cfg: &'a Config,
    pub(crate) directives: Vec<Directive>,
}

impl<'a> FileCtx<'a> {
    /// Lex `src` and precompute the analysis context.
    pub fn new(rel_path: &'a str, kind: FileKind, src: &str, cfg: &'a Config) -> FileCtx<'a> {
        let tokens = lex(src);
        let max_line = tokens
            .iter()
            .map(|t| t.line + count_newlines(&t.text))
            .max()
            .unwrap_or(0);
        let mut lines = vec![LineInfo::default(); max_line as usize + 2];
        for (i, t) in tokens.iter().enumerate() {
            match t.kind {
                TokKind::LineComment | TokKind::BlockComment => {
                    for l in t.line..=t.line + count_newlines(&t.text) {
                        lines[l as usize].comments.push(i);
                    }
                }
                _ => {
                    let info = &mut lines[t.line as usize];
                    if !info.has_code {
                        info.attr_start = t.text == "#";
                    }
                    info.has_code = true;
                }
            }
        }
        let test_spans = find_test_spans(&tokens);
        let fn_spans = find_fn_spans(&tokens);
        let directives = find_directives(&tokens, &lines);
        FileCtx { rel_path, kind, tokens, lines, test_spans, fn_spans, cfg, directives }
    }

    /// Index (into [`FileCtx::fn_spans`]) of the innermost function
    /// body containing token `i`, if any.
    pub(crate) fn enclosing_fn(&self, i: usize) -> Option<usize> {
        self.fn_spans
            .iter()
            .enumerate()
            .filter(|(_, s)| s.open < i && i <= s.close)
            .min_by_key(|(_, s)| s.close - s.open)
            .map(|(idx, _)| idx)
    }

    /// Is `line` inside a `#[cfg(test)]` module or `#[test]` function?
    pub(crate) fn in_test_code(&self, line: u32) -> bool {
        self.kind == FileKind::Test
            || self.test_spans.iter().any(|&(a, b)| a <= line && line <= b)
    }

    /// Non-comment token at `i`, if any.
    pub(crate) fn code_tok(&self, i: usize) -> Option<&Token> {
        let t = self.tokens.get(i)?;
        match t.kind {
            TokKind::LineComment | TokKind::BlockComment => None,
            _ => Some(t),
        }
    }

    /// Index of the next non-comment token at or after `i`.
    pub(crate) fn next_code(&self, mut i: usize) -> Option<usize> {
        while i < self.tokens.len() {
            if self.code_tok(i).is_some() {
                return Some(i);
            }
            i += 1;
        }
        None
    }

    /// Index of the previous non-comment token at or before `i`.
    pub(crate) fn prev_code(&self, mut i: usize) -> Option<usize> {
        loop {
            if self.code_tok(i).is_some() {
                return Some(i);
            }
            if i == 0 {
                return None;
            }
            i -= 1;
        }
    }

    /// Build a diagnostic at a token.
    pub(crate) fn diag(
        &self,
        rule: &'static str,
        severity: Severity,
        at: &Token,
        message: impl Into<String>,
        help: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            rule,
            severity,
            path: self.rel_path.to_string(),
            line: at.line,
            col: at.col,
            message: message.into(),
            help: help.into(),
        }
    }
}

fn count_newlines(s: &str) -> u32 {
    s.bytes().filter(|&b| b == b'\n').count() as u32
}

/// Extract `ts3-lint: allow(rule[, rule]) reason` directives from
/// comment tokens. A comment that mentions `ts3-lint:` but does not
/// parse keeps `rules` empty — the engine reports it as malformed.
fn find_directives(tokens: &[Token], lines: &[LineInfo]) -> Vec<Directive> {
    let mut out = Vec::new();
    for t in tokens {
        // Only plain comments whose whole purpose is the directive
        // count: doc comments and prose that merely *mentions* the
        // syntax (like this crate's own documentation) must not parse
        // as directives.
        let body = match t.kind {
            TokKind::LineComment => {
                if t.text.starts_with("///") || t.text.starts_with("//!") {
                    continue;
                }
                t.text.trim_start_matches('/')
            }
            TokKind::BlockComment => {
                if t.text.starts_with("/**") || t.text.starts_with("/*!") {
                    continue;
                }
                t.text.trim_start_matches("/*")
            }
            _ => continue,
        };
        let Some(rest) = body.trim_start().strip_prefix("ts3-lint:") else { continue };
        let rest = rest.trim_start();
        let (rules, has_reason) = parse_allow(rest);
        // Trailing comment suppresses its own line; a standalone
        // comment line suppresses the next line that holds code.
        let own_line_code = lines
            .get(t.line as usize)
            .is_some_and(|l| l.has_code);
        let target_line = if own_line_code {
            t.line
        } else {
            let mut l = t.line as usize + 1;
            while l < lines.len() && !lines[l].has_code {
                l += 1;
            }
            l as u32
        };
        out.push(Directive {
            rules,
            has_reason,
            line: t.line,
            col: t.col,
            target_line,
            used: Cell::new(false),
        });
    }
    out
}

/// Parse `allow(a, b) reason…`; returns the rule list (empty when
/// malformed) and whether a non-empty reason followed.
fn parse_allow(rest: &str) -> (Vec<String>, bool) {
    let Some(args) = rest.strip_prefix("allow(") else {
        return (Vec::new(), false);
    };
    let Some(close) = args.find(')') else {
        return (Vec::new(), false);
    };
    let rules: Vec<String> = args[..close]
        .split(',')
        .map(|r| r.trim())
        .filter(|r| !r.is_empty())
        // Short alias from the rule's write-up; normalise so directive
        // matching stays exact-id.
        .map(|r| if r == "no-unwrap" { "no-unwrap-in-lib" } else { r })
        .map(str::to_string)
        .collect();
    let reason = args[close + 1..].trim();
    // Block comments may close with `*/` right after the reason.
    let reason = reason.strip_suffix("*/").unwrap_or(reason).trim();
    (rules, !reason.is_empty())
}

/// Find line spans of items annotated `#[test]` or `#[cfg(test)]`
/// (typically `mod tests { … }`), by brace matching from the token
/// stream. Attributes like `#[cfg(not(test))]` do not count.
fn find_test_spans(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut spans = Vec::new();
    let code: Vec<(usize, &Token)> = tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
        .collect();
    let mut i = 0;
    while i < code.len() {
        if code[i].1.text != "#" || i + 1 >= code.len() || code[i + 1].1.text != "[" {
            i += 1;
            continue;
        }
        // Collect the attribute body up to the matching `]`.
        let mut j = i + 2;
        let mut depth = 1usize;
        let mut body: Vec<&str> = Vec::new();
        while j < code.len() && depth > 0 {
            match code[j].1.text.as_str() {
                "[" => depth += 1,
                "]" => depth -= 1,
                s if depth >= 1 => body.push(s),
                _ => {}
            }
            j += 1;
        }
        let is_test_attr = body.as_slice() == ["test"]
            || (body.first() == Some(&"cfg") && body.contains(&"test") && !body.contains(&"not"));
        if !is_test_attr {
            i = j;
            continue;
        }
        let attr_line = code[i].1.line;
        // Find the item's block: first `{` at delimiter depth 0 (a `;`
        // first means a block-less item — nothing to span).
        let mut k = j;
        let mut pdepth = 0i32;
        let mut open = None;
        while k < code.len() {
            match code[k].1.text.as_str() {
                "(" | "[" => pdepth += 1,
                ")" | "]" => pdepth -= 1,
                "{" if pdepth == 0 => {
                    open = Some(k);
                    break;
                }
                ";" if pdepth == 0 => break,
                _ => {}
            }
            k += 1;
        }
        if let Some(open) = open {
            let mut bdepth = 0i32;
            let mut k = open;
            while k < code.len() {
                match code[k].1.text.as_str() {
                    "{" => bdepth += 1,
                    "}" => {
                        bdepth -= 1;
                        if bdepth == 0 {
                            spans.push((attr_line, code[k].1.line));
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
        }
        i = j;
    }
    spans
}

/// Find the body extents of every `fn` item by scanning from each `fn`
/// keyword to the first `{` at delimiter depth 0 (a `;` or `}` first
/// means a body-less declaration — trait method signatures,
/// fn-pointer-typed struct fields) and brace-matching from there.
fn find_fn_spans(tokens: &[Token]) -> Vec<FnSpan> {
    let code: Vec<(usize, &Token)> = tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
        .collect();
    let mut spans = Vec::new();
    for ci in 0..code.len() {
        let t = code[ci].1;
        if t.kind != TokKind::Ident || t.text != "fn" {
            continue;
        }
        // Locate the body's opening brace past the signature.
        let mut k = ci + 1;
        let mut pdepth = 0i32;
        let mut open = None;
        while k < code.len() {
            match code[k].1.text.as_str() {
                "(" | "[" => pdepth += 1,
                ")" | "]" => pdepth -= 1,
                "{" if pdepth == 0 => {
                    open = Some(k);
                    break;
                }
                ";" | "}" if pdepth == 0 => break,
                _ => {}
            }
            k += 1;
        }
        let Some(open) = open else { continue };
        let mut bdepth = 0i32;
        let mut k = open;
        while k < code.len() {
            match code[k].1.text.as_str() {
                "{" => bdepth += 1,
                "}" => {
                    bdepth -= 1;
                    if bdepth == 0 {
                        spans.push(FnSpan { open: code[open].0, close: code[k].0 });
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
    }
    spans
}

/// Run the per-file contract rules over one file, appending raw
/// (un-suppressed) findings to `diags` and crediting wall time to each
/// rule in `timing`. Suppression and directive hygiene are separate
/// stages ([`apply_directives`], [`directive_hygiene`]) so the
/// workspace pass can interleave the graph rules in between.
pub(crate) fn run_file_rules(
    ctx: &FileCtx,
    selected: &[String],
    diags: &mut Vec<Diagnostic>,
    timing: &mut RuleTiming,
) {
    let run = |id: &str| selected.is_empty() || selected.iter().any(|s| s == id);
    let rules: [(&'static str, fn(&FileCtx, &mut Vec<Diagnostic>)); 8] = [
        ("unsafe-needs-safety", rules::unsafe_needs_safety),
        ("no-hashmap-in-lib", rules::no_hashmap_in_lib),
        ("no-wallclock-or-entropy", rules::no_wallclock_or_entropy),
        ("no-unwrap-in-lib", rules::no_unwrap_in_lib),
        ("fma-policy", rules::fma_policy),
        ("hermetic-imports", rules::hermetic_imports),
        ("unsafe-dataflow", rules::unsafe_dataflow),
        ("env-registry", rules::env_registry),
    ];
    for (id, rule) in rules {
        if !run(id) {
            continue;
        }
        let t0 = now_us();
        rule(ctx, diags);
        *timing.entry(id).or_insert(0) += now_us() - t0;
    }
}

/// Drop diagnostics of `path` suppressed by a matching allow directive
/// (same target line, same rule id), marking the directive used.
/// Diagnostics belonging to other files pass through untouched, so the
/// workspace pass can run this per file over the combined diagnostic
/// list after the graph rules have contributed their findings.
pub(crate) fn apply_directives(
    directives: &[Directive],
    path: &str,
    diags: &mut Vec<Diagnostic>,
) {
    diags.retain(|d| {
        if d.path != path {
            return true;
        }
        let mut suppressed = false;
        for dir in directives {
            if dir.target_line == d.line && dir.rules.iter().any(|r| r == d.rule) {
                dir.used.set(true);
                suppressed = true;
            }
        }
        !suppressed
    });
}

/// Directive hygiene for one file. Unknown rule names count as
/// malformed: a typo in a directive must not silently disable a real
/// allow. `unused-allow` only runs under an empty rule filter (usage
/// tracking is incomplete under a filter, so it would produce false
/// positives).
pub(crate) fn directive_hygiene(
    path: &str,
    directives: &[Directive],
    selected: &[String],
    diags: &mut Vec<Diagnostic>,
) {
    let run = |id: &str| selected.is_empty() || selected.iter().any(|s| s == id);
    let at = |rule: &'static str, dir: &Directive, msg: String, help: String| Diagnostic {
        rule,
        severity: if rule == "unused-allow" { Severity::Warning } else { Severity::Error },
        path: path.to_string(),
        line: dir.line,
        col: dir.col,
        message: msg,
        help,
    };
    for dir in directives {
        if run("allow-needs-reason") {
            if dir.rules.is_empty() {
                diags.push(at(
                    "allow-needs-reason",
                    dir,
                    "malformed ts3-lint directive".into(),
                    "write `// ts3-lint: allow(rule-name) <reason>`".into(),
                ));
                continue;
            }
            if let Some(unknown) =
                dir.rules.iter().find(|r| !ALL_RULES.contains(&r.as_str()))
            {
                diags.push(at(
                    "allow-needs-reason",
                    dir,
                    format!("directive names unknown rule `{unknown}`"),
                    format!("known rules: {}", ALL_RULES.join(", ")),
                ));
            }
            if !dir.has_reason {
                diags.push(at(
                    "allow-needs-reason",
                    dir,
                    format!("allow({}) carries no reason", dir.rules.join(", ")),
                    "append the justification after the closing paren".into(),
                ));
            }
        }
        if run("unused-allow") && selected.is_empty() && !dir.rules.is_empty() && !dir.used.get()
        {
            diags.push(at(
                "unused-allow",
                dir,
                format!("allow({}) suppressed nothing", dir.rules.join(", ")),
                "delete the stale directive".into(),
            ));
        }
    }
}

/// Lint one file in isolation: run the selected per-file rules, apply
/// allow directives, and report directive hygiene. The workspace-graph
/// rules (`crate-layering`, `lock-order`, `config-liveness` and the
/// cross-file half of `env-registry`) need the whole file set and only
/// run under [`crate::lint_workspace_v2`].
///
/// `selected` filters rules by id; empty means "all".
pub fn lint_file(ctx: &FileCtx, selected: &[String]) -> Vec<Diagnostic> {
    let mut timing = RuleTiming::new();
    let mut diags = Vec::new();
    run_file_rules(ctx, selected, &mut diags, &mut timing);
    apply_directives(&ctx.directives, ctx.rel_path, &mut diags);
    directive_hygiene(ctx.rel_path, &ctx.directives, selected, &mut diags);
    diags.sort_by(|a, b| (a.line, a.col).cmp(&(b.line, b.col)));
    diags
}
