//! The rule engine: per-file token analysis context, inline
//! `// ts3-lint: allow(rule) reason` directives, `#[cfg(test)]` span
//! tracking, and suppression bookkeeping.

use crate::config::Config;
use crate::diag::{Diagnostic, Severity};
use crate::lexer::{lex, TokKind, Token};
use crate::rules;
use crate::walk::FileKind;
use std::cell::Cell;

/// The six contract rules plus the two directive meta-rules, in
/// reporting order.
pub const ALL_RULES: &[&str] = &[
    "unsafe-needs-safety",
    "no-hashmap-in-lib",
    "no-wallclock-or-entropy",
    "no-unwrap-in-lib",
    "fma-policy",
    "hermetic-imports",
    "allow-needs-reason",
    "unused-allow",
];

/// Marker accepted as a safety justification: the canonical `// SAFETY:`
/// comment or a rustdoc `# Safety` section heading.
pub(crate) const SAFETY_MARKERS: &[&str] = &["SAFETY:", "# Safety"];

/// One parsed `ts3-lint: allow(...)` directive.
#[derive(Debug)]
pub(crate) struct Directive {
    /// Rules this directive may suppress.
    pub rules: Vec<String>,
    /// Whether free text (the reason) followed the closing paren.
    pub has_reason: bool,
    /// Line/col of the comment carrying the directive.
    pub line: u32,
    pub col: u32,
    /// Line whose diagnostics this directive suppresses: its own line
    /// for trailing comments, the next code line for standalone ones.
    pub target_line: u32,
    /// Set when the directive suppressed at least one diagnostic.
    pub used: Cell<bool>,
}

/// Per-line facts precomputed from the token stream (index 0 unused;
/// lines are 1-based).
#[derive(Debug, Default, Clone)]
pub(crate) struct LineInfo {
    /// Line holds at least one non-comment token.
    pub has_code: bool,
    /// First non-comment token on the line is `#` (attribute line).
    pub attr_start: bool,
    /// Indices (into the token vec) of comments touching this line;
    /// multi-line block comments are recorded on every covered line.
    pub comments: Vec<usize>,
}

/// Everything a rule needs to inspect one file.
pub struct FileCtx<'a> {
    /// Workspace-relative path.
    pub rel_path: &'a str,
    /// File role (lib / bin / test).
    pub kind: FileKind,
    /// Full token stream, comments included.
    pub tokens: Vec<Token>,
    /// Per-line facts; see [`LineInfo`].
    pub(crate) lines: Vec<LineInfo>,
    /// Line ranges covered by `#[cfg(test)]` / `#[test]` items.
    pub(crate) test_spans: Vec<(u32, u32)>,
    /// Workspace configuration.
    pub cfg: &'a Config,
    pub(crate) directives: Vec<Directive>,
}

impl<'a> FileCtx<'a> {
    /// Lex `src` and precompute the analysis context.
    pub fn new(rel_path: &'a str, kind: FileKind, src: &str, cfg: &'a Config) -> FileCtx<'a> {
        let tokens = lex(src);
        let max_line = tokens
            .iter()
            .map(|t| t.line + count_newlines(&t.text))
            .max()
            .unwrap_or(0);
        let mut lines = vec![LineInfo::default(); max_line as usize + 2];
        for (i, t) in tokens.iter().enumerate() {
            match t.kind {
                TokKind::LineComment | TokKind::BlockComment => {
                    for l in t.line..=t.line + count_newlines(&t.text) {
                        lines[l as usize].comments.push(i);
                    }
                }
                _ => {
                    let info = &mut lines[t.line as usize];
                    if !info.has_code {
                        info.attr_start = t.text == "#";
                    }
                    info.has_code = true;
                }
            }
        }
        let test_spans = find_test_spans(&tokens);
        let directives = find_directives(&tokens, &lines);
        FileCtx { rel_path, kind, tokens, lines, test_spans, cfg, directives }
    }

    /// Is `line` inside a `#[cfg(test)]` module or `#[test]` function?
    pub(crate) fn in_test_code(&self, line: u32) -> bool {
        self.kind == FileKind::Test
            || self.test_spans.iter().any(|&(a, b)| a <= line && line <= b)
    }

    /// Non-comment token at `i`, if any.
    pub(crate) fn code_tok(&self, i: usize) -> Option<&Token> {
        let t = self.tokens.get(i)?;
        match t.kind {
            TokKind::LineComment | TokKind::BlockComment => None,
            _ => Some(t),
        }
    }

    /// Index of the next non-comment token at or after `i`.
    pub(crate) fn next_code(&self, mut i: usize) -> Option<usize> {
        while i < self.tokens.len() {
            if self.code_tok(i).is_some() {
                return Some(i);
            }
            i += 1;
        }
        None
    }

    /// Index of the previous non-comment token at or before `i`.
    pub(crate) fn prev_code(&self, mut i: usize) -> Option<usize> {
        loop {
            if self.code_tok(i).is_some() {
                return Some(i);
            }
            if i == 0 {
                return None;
            }
            i -= 1;
        }
    }

    /// Build a diagnostic at a token.
    pub(crate) fn diag(
        &self,
        rule: &'static str,
        severity: Severity,
        at: &Token,
        message: impl Into<String>,
        help: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            rule,
            severity,
            path: self.rel_path.to_string(),
            line: at.line,
            col: at.col,
            message: message.into(),
            help: help.into(),
        }
    }
}

fn count_newlines(s: &str) -> u32 {
    s.bytes().filter(|&b| b == b'\n').count() as u32
}

/// Extract `ts3-lint: allow(rule[, rule]) reason` directives from
/// comment tokens. A comment that mentions `ts3-lint:` but does not
/// parse keeps `rules` empty — the engine reports it as malformed.
fn find_directives(tokens: &[Token], lines: &[LineInfo]) -> Vec<Directive> {
    let mut out = Vec::new();
    for t in tokens {
        // Only plain comments whose whole purpose is the directive
        // count: doc comments and prose that merely *mentions* the
        // syntax (like this crate's own documentation) must not parse
        // as directives.
        let body = match t.kind {
            TokKind::LineComment => {
                if t.text.starts_with("///") || t.text.starts_with("//!") {
                    continue;
                }
                t.text.trim_start_matches('/')
            }
            TokKind::BlockComment => {
                if t.text.starts_with("/**") || t.text.starts_with("/*!") {
                    continue;
                }
                t.text.trim_start_matches("/*")
            }
            _ => continue,
        };
        let Some(rest) = body.trim_start().strip_prefix("ts3-lint:") else { continue };
        let rest = rest.trim_start();
        let (rules, has_reason) = parse_allow(rest);
        // Trailing comment suppresses its own line; a standalone
        // comment line suppresses the next line that holds code.
        let own_line_code = lines
            .get(t.line as usize)
            .is_some_and(|l| l.has_code);
        let target_line = if own_line_code {
            t.line
        } else {
            let mut l = t.line as usize + 1;
            while l < lines.len() && !lines[l].has_code {
                l += 1;
            }
            l as u32
        };
        out.push(Directive {
            rules,
            has_reason,
            line: t.line,
            col: t.col,
            target_line,
            used: Cell::new(false),
        });
    }
    out
}

/// Parse `allow(a, b) reason…`; returns the rule list (empty when
/// malformed) and whether a non-empty reason followed.
fn parse_allow(rest: &str) -> (Vec<String>, bool) {
    let Some(args) = rest.strip_prefix("allow(") else {
        return (Vec::new(), false);
    };
    let Some(close) = args.find(')') else {
        return (Vec::new(), false);
    };
    let rules: Vec<String> = args[..close]
        .split(',')
        .map(|r| r.trim())
        .filter(|r| !r.is_empty())
        // Short alias from the rule's write-up; normalise so directive
        // matching stays exact-id.
        .map(|r| if r == "no-unwrap" { "no-unwrap-in-lib" } else { r })
        .map(str::to_string)
        .collect();
    let reason = args[close + 1..].trim();
    // Block comments may close with `*/` right after the reason.
    let reason = reason.strip_suffix("*/").unwrap_or(reason).trim();
    (rules, !reason.is_empty())
}

/// Find line spans of items annotated `#[test]` or `#[cfg(test)]`
/// (typically `mod tests { … }`), by brace matching from the token
/// stream. Attributes like `#[cfg(not(test))]` do not count.
fn find_test_spans(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut spans = Vec::new();
    let code: Vec<(usize, &Token)> = tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
        .collect();
    let mut i = 0;
    while i < code.len() {
        if code[i].1.text != "#" || i + 1 >= code.len() || code[i + 1].1.text != "[" {
            i += 1;
            continue;
        }
        // Collect the attribute body up to the matching `]`.
        let mut j = i + 2;
        let mut depth = 1usize;
        let mut body: Vec<&str> = Vec::new();
        while j < code.len() && depth > 0 {
            match code[j].1.text.as_str() {
                "[" => depth += 1,
                "]" => depth -= 1,
                s if depth >= 1 => body.push(s),
                _ => {}
            }
            j += 1;
        }
        let is_test_attr = body.as_slice() == ["test"]
            || (body.first() == Some(&"cfg") && body.contains(&"test") && !body.contains(&"not"));
        if !is_test_attr {
            i = j;
            continue;
        }
        let attr_line = code[i].1.line;
        // Find the item's block: first `{` at delimiter depth 0 (a `;`
        // first means a block-less item — nothing to span).
        let mut k = j;
        let mut pdepth = 0i32;
        let mut open = None;
        while k < code.len() {
            match code[k].1.text.as_str() {
                "(" | "[" => pdepth += 1,
                ")" | "]" => pdepth -= 1,
                "{" if pdepth == 0 => {
                    open = Some(k);
                    break;
                }
                ";" if pdepth == 0 => break,
                _ => {}
            }
            k += 1;
        }
        if let Some(open) = open {
            let mut bdepth = 0i32;
            let mut k = open;
            while k < code.len() {
                match code[k].1.text.as_str() {
                    "{" => bdepth += 1,
                    "}" => {
                        bdepth -= 1;
                        if bdepth == 0 {
                            spans.push((attr_line, code[k].1.line));
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
        }
        i = j;
    }
    spans
}

/// Lint one file: run the selected rules, apply allow directives, and
/// report directive hygiene.
///
/// `selected` filters rules by id; empty means "all". When a filter is
/// active the directive meta-rules only run if explicitly selected
/// (usage tracking is incomplete under a filter, so `unused-allow`
/// would produce false positives).
pub fn lint_file(ctx: &FileCtx, selected: &[String]) -> Vec<Diagnostic> {
    let run = |id: &str| selected.is_empty() || selected.iter().any(|s| s == id);
    let mut diags = Vec::new();
    if run("unsafe-needs-safety") {
        rules::unsafe_needs_safety(ctx, &mut diags);
    }
    if run("no-hashmap-in-lib") {
        rules::no_hashmap_in_lib(ctx, &mut diags);
    }
    if run("no-wallclock-or-entropy") {
        rules::no_wallclock_or_entropy(ctx, &mut diags);
    }
    if run("no-unwrap-in-lib") {
        rules::no_unwrap_in_lib(ctx, &mut diags);
    }
    if run("fma-policy") {
        rules::fma_policy(ctx, &mut diags);
    }
    if run("hermetic-imports") {
        rules::hermetic_imports(ctx, &mut diags);
    }

    // Apply suppressions.
    diags.retain(|d| {
        let suppressed = ctx.directives.iter().any(|dir| {
            dir.target_line == d.line && dir.rules.iter().any(|r| r == d.rule)
        });
        if suppressed {
            for dir in &ctx.directives {
                if dir.target_line == d.line && dir.rules.iter().any(|r| r == d.rule) {
                    dir.used.set(true);
                }
            }
        }
        !suppressed
    });

    // Directive hygiene. Unknown rule names count as malformed: a typo
    // in a directive must not silently disable a real allow.
    for dir in &ctx.directives {
        let at = Token {
            kind: TokKind::LineComment,
            text: String::new(),
            line: dir.line,
            col: dir.col,
        };
        if run("allow-needs-reason") {
            if dir.rules.is_empty() {
                diags.push(ctx.diag(
                    "allow-needs-reason",
                    Severity::Error,
                    &at,
                    "malformed ts3-lint directive",
                    "write `// ts3-lint: allow(rule-name) <reason>`",
                ));
                continue;
            }
            if let Some(unknown) =
                dir.rules.iter().find(|r| !ALL_RULES.contains(&r.as_str()))
            {
                diags.push(ctx.diag(
                    "allow-needs-reason",
                    Severity::Error,
                    &at,
                    format!("directive names unknown rule `{unknown}`"),
                    format!("known rules: {}", ALL_RULES.join(", ")),
                ));
            }
            if !dir.has_reason {
                diags.push(ctx.diag(
                    "allow-needs-reason",
                    Severity::Error,
                    &at,
                    format!("allow({}) carries no reason", dir.rules.join(", ")),
                    "append the justification after the closing paren",
                ));
            }
        }
        if run("unused-allow") && selected.is_empty() && !dir.rules.is_empty() && !dir.used.get()
        {
            diags.push(ctx.diag(
                "unused-allow",
                Severity::Warning,
                &at,
                format!("allow({}) suppressed nothing", dir.rules.join(", ")),
                "delete the stale directive",
            ));
        }
    }
    diags.sort_by(|a, b| (a.line, a.col).cmp(&(b.line, b.col)));
    diags
}
