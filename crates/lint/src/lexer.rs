//! A lightweight Rust lexer: enough token structure for line-oriented
//! static analysis, nowhere near a parser.
//!
//! The lexer understands exactly the constructs that would otherwise
//! make naive `grep`-style scanning lie about source text:
//!
//! * line comments (including `///` and `//!` doc comments) and
//!   **nested** block comments,
//! * string literals with escapes, byte strings, and raw strings with
//!   any number of `#` guards (`r"…"`, `r#"…"#`, `br##"…"##`),
//! * char literals vs lifetimes — `'a'` and `'\''` are chars, `'a` in
//!   `Vec<'a, T>` is a lifetime,
//! * raw identifiers (`r#type`),
//! * numeric literals with type suffixes and exponents (`1.0e-3f32`),
//!   lexed so that `0..n` stays an integer followed by a range operator,
//! * multi-character operators (`::`, `+=`, `->`, `..=`, …) as single
//!   tokens, so rules can match `+=` without reconstructing adjacency.
//!
//! Every token carries its 1-based line and column, and comments are
//! ordinary tokens (rules need them: `// SAFETY:` proximity and
//! `// ts3-lint: allow(...)` directives are comment-driven).

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `unsafe`, `HashMap`, `r#type`).
    Ident,
    /// Lifetime such as `'a` (without the quote in mind — text keeps it).
    Lifetime,
    /// Integer or float literal, suffix included (`1_000u64`, `1.0e-3`).
    Number,
    /// String literal of any flavour (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Char or byte literal (`'x'`, `'\''`, `b'\n'`).
    Char,
    /// Operator / punctuation, multi-character where Rust has one.
    Punct,
    /// `// …` comment (doc variants included), text without newline.
    LineComment,
    /// `/* … */` comment, possibly spanning lines, text with markers.
    BlockComment,
}

/// One lexed token with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token class.
    pub kind: TokKind,
    /// Exact source text of the token.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column (in characters) of the token's first character.
    pub col: u32,
}

impl Token {
    fn new(kind: TokKind, text: &str, line: u32, col: u32) -> Token {
        Token { kind, text: text.to_string(), line, col }
    }
}

/// Multi-character operators, longest first so maximal munch works.
const PUNCTS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "..",
];

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.src.get(self.pos + off).copied()
    }

    /// Advance one byte, tracking line/col. Multi-byte UTF-8
    /// continuation bytes do not advance the column, so columns count
    /// characters.
    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else if b & 0xC0 != 0x80 {
            self.col += 1;
        }
        Some(b)
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    fn slice(&self, from: usize) -> &'a str {
        // The lexer only ever slices at ASCII boundaries it has
        // itself established, and the input is a &str upstream.
        std::str::from_utf8(&self.src[from..self.pos]).unwrap_or("")
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_cont(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lex `src` into a token stream. Unterminated constructs (an open
/// block comment or string at EOF) terminate the affected token at end
/// of input rather than erroring: for a linter, producing *some* tokens
/// for malformed input beats refusing the file.
pub fn lex(src: &str) -> Vec<Token> {
    let mut lx = Lexer { src: src.as_bytes(), pos: 0, line: 1, col: 1 };
    let mut out = Vec::new();
    while let Some(b) = lx.peek() {
        let (line, col, start) = (lx.line, lx.col, lx.pos);
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                lx.bump();
            }
            b'/' if lx.peek_at(1) == Some(b'/') => {
                while let Some(c) = lx.peek() {
                    if c == b'\n' {
                        break;
                    }
                    lx.bump();
                }
                out.push(Token::new(TokKind::LineComment, lx.slice(start), line, col));
            }
            b'/' if lx.peek_at(1) == Some(b'*') => {
                lx.bump_n(2);
                let mut depth = 1usize;
                while depth > 0 {
                    match (lx.peek(), lx.peek_at(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            depth += 1;
                            lx.bump_n(2);
                        }
                        (Some(b'*'), Some(b'/')) => {
                            depth -= 1;
                            lx.bump_n(2);
                        }
                        (Some(_), _) => {
                            lx.bump();
                        }
                        (None, _) => break,
                    }
                }
                out.push(Token::new(TokKind::BlockComment, lx.slice(start), line, col));
            }
            b'r' | b'b' if starts_raw_or_byte_literal(&lx) => {
                lex_string_like(&mut lx, &mut out, line, col, start);
            }
            b'"' => {
                lex_quoted(&mut lx, b'"');
                out.push(Token::new(TokKind::Str, lx.slice(start), line, col));
            }
            b'\'' => {
                lex_quote_or_lifetime(&mut lx, &mut out, line, col, start);
            }
            _ if is_ident_start(b) => {
                while let Some(c) = lx.peek() {
                    if !is_ident_cont(c) {
                        break;
                    }
                    lx.bump();
                }
                // Raw identifier: a lone `r` followed by `#ident` (the
                // raw-string case `r#"` was ruled out above).
                if lx.slice(start) == "r"
                    && lx.peek() == Some(b'#')
                    && lx.peek_at(1).is_some_and(is_ident_start)
                {
                    lx.bump(); // `#`
                    while let Some(c) = lx.peek() {
                        if !is_ident_cont(c) {
                            break;
                        }
                        lx.bump();
                    }
                }
                out.push(Token::new(TokKind::Ident, lx.slice(start), line, col));
            }
            _ if b.is_ascii_digit() => {
                lex_number(&mut lx);
                out.push(Token::new(TokKind::Number, lx.slice(start), line, col));
            }
            _ => {
                let rest = &lx.src[lx.pos..];
                let multi = PUNCTS.iter().find(|p| rest.starts_with(p.as_bytes()));
                match multi {
                    Some(p) => lx.bump_n(p.len()),
                    None => {
                        lx.bump();
                    }
                }
                out.push(Token::new(TokKind::Punct, lx.slice(start), line, col));
            }
        }
    }
    out
}

/// Does the cursor sit on `r"`, `r#"`, `r#…#"`, `b"`, `b'`, `br"`,
/// `br#…#"` — i.e. a raw/byte literal rather than a plain identifier
/// like `radius` or a raw identifier like `r#type`?
fn starts_raw_or_byte_literal(lx: &Lexer) -> bool {
    let mut off = 1;
    if lx.peek() == Some(b'b') {
        match lx.peek_at(1) {
            Some(b'\'') | Some(b'"') => return true,
            Some(b'r') => off = 2,
            _ => return false,
        }
    }
    // `r` (or `br`) followed by hashes-then-quote is a raw string;
    // `r#ident` is a raw identifier, not a literal.
    match lx.peek_at(off) {
        Some(b'"') => true,
        Some(b'#') => {
            let mut k = off;
            while lx.peek_at(k) == Some(b'#') {
                k += 1;
            }
            lx.peek_at(k) == Some(b'"')
        }
        _ => false,
    }
}

/// Lex a raw string / byte string / byte char starting at `r`/`b`.
fn lex_string_like(lx: &mut Lexer, out: &mut Vec<Token>, line: u32, col: u32, start: usize) {
    let mut is_char = false;
    if lx.peek() == Some(b'b') {
        lx.bump();
        if lx.peek() == Some(b'\'') {
            is_char = true;
        }
    }
    if is_char {
        lex_quoted(lx, b'\'');
        out.push(Token::new(TokKind::Char, lx.slice(start), line, col));
        return;
    }
    if lx.peek() == Some(b'r') {
        lx.bump();
    } else {
        // Plain byte string `b"…"`: escape-aware like `"…"` — only the
        // raw flavours below ignore backslashes.
        lex_quoted(lx, b'"');
        out.push(Token::new(TokKind::Str, lx.slice(start), line, col));
        return;
    }
    let mut guards = 0usize;
    while lx.peek() == Some(b'#') {
        guards += 1;
        lx.bump();
    }
    if lx.peek() == Some(b'"') {
        lx.bump();
        // Scan for `"` followed by `guards` hashes.
        'scan: while let Some(c) = lx.bump() {
            if c == b'"' {
                for k in 0..guards {
                    if lx.peek_at(k) != Some(b'#') {
                        continue 'scan;
                    }
                }
                lx.bump_n(guards);
                break;
            }
        }
    }
    out.push(Token::new(TokKind::Str, lx.slice(start), line, col));
}

/// Lex a `'…'` / `"…"` body with escape handling; the opening quote is
/// still at the cursor.
fn lex_quoted(lx: &mut Lexer, quote: u8) {
    lx.bump();
    while let Some(c) = lx.bump() {
        if c == b'\\' {
            lx.bump();
        } else if c == quote {
            break;
        }
    }
}

/// Disambiguate `'` between a char literal and a lifetime.
fn lex_quote_or_lifetime(lx: &mut Lexer, out: &mut Vec<Token>, line: u32, col: u32, start: usize) {
    // `'\…'` is always a char. `'x'` (quote two ahead) is a char.
    // Otherwise `'ident` is a lifetime (`'a`, `'static`, loop labels).
    let next = lx.peek_at(1);
    if next == Some(b'\\') || (lx.peek_at(2) == Some(b'\'') && next != Some(b'\'')) {
        lex_quoted(lx, b'\'');
        out.push(Token::new(TokKind::Char, lx.slice(start), line, col));
        return;
    }
    match next {
        Some(c) if is_ident_start(c) => {
            lx.bump(); // the quote
            while let Some(c) = lx.peek() {
                if !is_ident_cont(c) {
                    break;
                }
                lx.bump();
            }
            // A closing quote right after the "ident" means this was a
            // multi-byte char literal (`'é'`), not a lifetime.
            if lx.peek() == Some(b'\'') {
                lx.bump();
                out.push(Token::new(TokKind::Char, lx.slice(start), line, col));
            } else {
                out.push(Token::new(TokKind::Lifetime, lx.slice(start), line, col));
            }
        }
        _ => {
            // Multi-character char literal body without a backslash can
            // only be a unicode char: consume until the closing quote.
            lex_quoted(lx, b'\'');
            out.push(Token::new(TokKind::Char, lx.slice(start), line, col));
        }
    }
}

/// Lex a numeric literal; the leading digit is at the cursor.
fn lex_number(lx: &mut Lexer) {
    if lx.peek() == Some(b'0')
        && matches!(lx.peek_at(1), Some(b'x') | Some(b'o') | Some(b'b') | Some(b'X'))
    {
        lx.bump_n(2);
        while let Some(c) = lx.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' {
                lx.bump();
            } else {
                break;
            }
        }
        return;
    }
    let mut seen_exp = false;
    while let Some(c) = lx.peek() {
        match c {
            b'0'..=b'9' | b'_' => {
                lx.bump();
            }
            // A dot continues the number only when followed by a digit:
            // `0..n` and `1.max(2)` must leave the dot to the caller.
            b'.' if lx.peek_at(1).is_some_and(|d| d.is_ascii_digit()) => {
                lx.bump();
            }
            b'e' | b'E' if !seen_exp => {
                // Exponent only if followed by digit or sign-digit;
                // otherwise it is a suffix letter (`1e` is unusual) —
                // take it as part of the literal either way.
                seen_exp = true;
                lx.bump();
                if matches!(lx.peek(), Some(b'+') | Some(b'-'))
                    && lx.peek_at(1).is_some_and(|d| d.is_ascii_digit())
                {
                    lx.bump();
                }
            }
            _ if is_ident_cont(c) => {
                // Type suffix: f32, u64, usize …
                lx.bump();
            }
            _ => break,
        }
    }
}
