//! The contract rules. Each rule is a free function over a
//! [`FileCtx`]; scoping (which file kinds, which paths) lives here so
//! the engine stays generic.

use crate::diag::{Diagnostic, Severity};
use crate::engine::{FileCtx, SAFETY_MARKERS};
use crate::lexer::TokKind;
use crate::walk::FileKind;

/// Path roots every workspace file may import from. Everything else —
/// any crates.io name, including dev-dependencies — breaks hermeticity.
const ALLOWED_IMPORT_ROOTS: &[&str] = &["std", "core", "alloc", "crate", "self", "super"];

/// **unsafe-needs-safety** — every `unsafe` keyword (block, fn, impl,
/// trait) must be justified by a `// SAFETY:` comment (or a rustdoc
/// `# Safety` section) on the same line or in the contiguous
/// comment/attribute run immediately above. Applies to every file,
/// tests included: test-only unsafe (e.g. a counting global allocator)
/// carries the same obligations.
pub fn unsafe_needs_safety(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    for t in &ctx.tokens {
        if t.kind != TokKind::Ident || t.text != "unsafe" {
            continue;
        }
        if has_safety_comment(ctx, t.line) {
            continue;
        }
        out.push(ctx.diag(
            "unsafe-needs-safety",
            Severity::Error,
            t,
            "`unsafe` without a `// SAFETY:` comment",
            "state the aliasing/lifetime/contract argument the unsafe code relies on \
             in a `// SAFETY:` comment directly above",
        ));
    }
}

/// Is there a safety marker on `line` or in the contiguous
/// comment/attribute block directly above it?
fn has_safety_comment(ctx: &FileCtx, line: u32) -> bool {
    let marked = |l: u32| {
        ctx.lines
            .get(l as usize)
            .is_some_and(|info| {
                info.comments.iter().any(|&i| {
                    let text = &ctx.tokens[i].text;
                    SAFETY_MARKERS.iter().any(|m| text.contains(m))
                })
            })
    };
    if marked(line) {
        return true;
    }
    let mut l = line.saturating_sub(1);
    while l >= 1 {
        if marked(l) {
            return true;
        }
        let Some(info) = ctx.lines.get(l as usize) else { break };
        let comment_only = !info.has_code && !info.comments.is_empty();
        // Walk past pure-comment lines and attribute lines; any other
        // line (code or blank) terminates the contiguous block.
        if !comment_only && !(info.has_code && info.attr_start) {
            break;
        }
        l -= 1;
    }
    false
}

/// **no-hashmap-in-lib** — `HashMap`/`HashSet` are banned in library
/// code: their iteration order varies per process (`RandomState`), and
/// iteration-order nondeterminism is exactly the class of bug the
/// workspace's bit-identical contracts exist to prevent. Use `BTreeMap`
/// / `BTreeSet` / `Vec` instead.
pub fn no_hashmap_in_lib(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    if ctx.kind != FileKind::Lib {
        return;
    }
    for t in &ctx.tokens {
        if t.kind == TokKind::Ident && (t.text == "HashMap" || t.text == "HashSet") {
            out.push(ctx.diag(
                "no-hashmap-in-lib",
                Severity::Error,
                t,
                format!("`{}` in library code (iteration order is nondeterministic)", t.text),
                "use BTreeMap/BTreeSet (ordered) or a Vec; or justify with \
                 `// ts3-lint: allow(no-hashmap-in-lib) <reason>`",
            ));
        }
    }
}

/// **no-wallclock-or-entropy** — `Instant::now` / `SystemTime::now`
/// outside the allowlisted timing modules, and any `rand`/`getrandom`
/// import, are errors: deterministic paths must not observe wall-clock
/// time or ambient entropy.
pub fn no_wallclock_or_entropy(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    let clock_allowed = ctx.cfg.wallclock_allow.iter().any(|p| p == ctx.rel_path);
    for i in 0..ctx.tokens.len() {
        let t = &ctx.tokens[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        if !clock_allowed && (t.text == "Instant" || t.text == "SystemTime") {
            let colon = ctx.next_code(i + 1);
            let method = colon.and_then(|c| ctx.next_code(c + 1));
            let is_now = colon
                .zip(method)
                .is_some_and(|(c, m)| {
                    ctx.tokens[c].text == "::" && ctx.tokens[m].text == "now"
                });
            if is_now {
                out.push(ctx.diag(
                    "no-wallclock-or-entropy",
                    Severity::Error,
                    t,
                    format!("`{}::now` outside the timing substrate", t.text),
                    "wall-clock reads belong in the allowlisted ts3-obs/ts3-bench timing \
                     modules (ts3lint.json `wallclock_allow`); deterministic code must \
                     not observe time",
                ));
            }
        }
        if t.text == "rand" || t.text == "getrandom" {
            let next_is_path = ctx
                .next_code(i + 1)
                .is_some_and(|n| ctx.tokens[n].text == "::");
            let prev = if i == 0 { None } else { ctx.prev_code(i - 1) };
            let prev_is_import = prev.is_some_and(|p| {
                ctx.tokens[p].text == "use" || ctx.tokens[p].text == "crate"
            });
            if next_is_path || prev_is_import {
                out.push(ctx.diag(
                    "no-wallclock-or-entropy",
                    Severity::Error,
                    t,
                    format!("`{}` is ambient entropy", t.text),
                    "seed ts3-rng streams explicitly instead",
                ));
            }
        }
    }
}

/// **no-unwrap-in-lib** — `.unwrap()`, `.expect(…)` and `panic!` in
/// non-test library code must carry a
/// `// ts3-lint: allow(no-unwrap-in-lib) <reason>` directive: every
/// abort point in code that production binaries link should be a
/// documented decision, not a reflex.
pub fn no_unwrap_in_lib(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    if ctx.kind != FileKind::Lib {
        return;
    }
    for i in 0..ctx.tokens.len() {
        let t = &ctx.tokens[i];
        if t.kind != TokKind::Ident || ctx.in_test_code(t.line) {
            continue;
        }
        let flagged = match t.text.as_str() {
            "unwrap" | "expect" => {
                let prev = if i == 0 { None } else { ctx.prev_code(i - 1) };
                let next = ctx.next_code(i + 1);
                prev.is_some_and(|p| ctx.tokens[p].text == ".")
                    && next.is_some_and(|n| ctx.tokens[n].text == "(")
            }
            "panic" => ctx
                .next_code(i + 1)
                .is_some_and(|n| ctx.tokens[n].text == "!"),
            _ => false,
        };
        if flagged {
            out.push(ctx.diag(
                "no-unwrap-in-lib",
                Severity::Error,
                t,
                format!("`{}` in library code without an allow directive", t.text),
                "return a Result with context, or annotate why aborting is correct: \
                 `// ts3-lint: allow(no-unwrap-in-lib) <reason>`",
            ));
        }
    }
}

/// **fma-policy** — in the configured hot-loop files, a compound float
/// fold written `acc += a * b` (or `acc -= a * b`) must instead use
/// `mul_add`: the workspace's bit-identical determinism contract pins
/// every kernel to uniform FMA arithmetic (two roundings, identical on
/// every path), and a stray `+=`/`*` fold silently reintroduces the
/// three-rounding form. Token-level heuristic; index arithmetic that
/// trips it is allowlistable per site.
pub fn fma_policy(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    if !ctx.cfg.fma_files.iter().any(|p| p == ctx.rel_path) {
        return;
    }
    for i in 0..ctx.tokens.len() {
        let t = &ctx.tokens[i];
        if t.kind != TokKind::Punct || !(t.text == "+=" || t.text == "-=") {
            continue;
        }
        if ctx.in_test_code(t.line) {
            continue;
        }
        // Scan the right-hand side up to the statement end for a
        // binary `*` at the statement's own nesting depth.
        let mut depth = 0i32;
        let mut j = i + 1;
        while let Some(k) = ctx.next_code(j) {
            let tok = &ctx.tokens[k];
            match tok.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                }
                ";" | "," if depth == 0 => break,
                "*" if depth == 0 => {
                    let is_binary = ctx.prev_code(k - 1).is_some_and(|p| {
                        let pt = &ctx.tokens[p];
                        matches!(pt.kind, TokKind::Ident | TokKind::Number)
                            || pt.text == ")"
                            || pt.text == "]"
                    });
                    if is_binary {
                        out.push(ctx.diag(
                            "fma-policy",
                            Severity::Error,
                            t,
                            format!("`{} a * b` fold in an FMA-policy file", t.text),
                            "write `acc = a.mul_add(b, acc)` so the fold uses the \
                             uniform two-rounding FMA form; allowlist integer index \
                             arithmetic with `// ts3-lint: allow(fma-policy) <reason>`",
                        ));
                        break;
                    }
                }
                _ => {}
            }
            j = k + 1;
        }
    }
}

/// Identifiers that count as a bounds-establishing guard for the
/// `unsafe-dataflow` rule when invoked as a macro (`ident!`).
const ASSERT_IDENTS: &[&str] = &[
    "assert",
    "assert_eq",
    "assert_ne",
    "debug_assert",
    "debug_assert_eq",
    "debug_assert_ne",
];

/// **unsafe-dataflow** — in the configured kernel files
/// (`ts3lint.json` `unsafe_dataflow_files`), every `unsafe { … }`
/// *block* must be preceded, inside the same function body, by an
/// `assert!`/`debug_assert!` family call that establishes the bounds
/// the raw operations rely on — or carry a reasoned
/// `// ts3-lint: allow(unsafe-dataflow)` directive. `unsafe fn` /
/// `unsafe impl` declarations are out of scope (they *state* a
/// contract; blocks *rely* on one), as is any assert-less block whose
/// justification is structural rather than checkable — that is what
/// the directive is for.
pub fn unsafe_dataflow(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    if !ctx.cfg.unsafe_dataflow_files.iter().any(|p| p == ctx.rel_path) {
        return;
    }
    for i in 0..ctx.tokens.len() {
        let t = &ctx.tokens[i];
        if t.kind != TokKind::Ident || t.text != "unsafe" {
            continue;
        }
        // Only `unsafe` blocks: the next code token must open a brace.
        if !ctx.next_code(i + 1).is_some_and(|n| ctx.tokens[n].text == "{") {
            continue;
        }
        let guarded = ctx.enclosing_fn(i).is_some_and(|fi| {
            let span = ctx.fn_spans[fi];
            (span.open..i).any(|j| {
                let Some(tok) = ctx.code_tok(j) else { return false };
                tok.kind == TokKind::Ident
                    && ASSERT_IDENTS.contains(&tok.text.as_str())
                    && ctx.next_code(j + 1).is_some_and(|n| ctx.tokens[n].text == "!")
            })
        });
        if !guarded {
            out.push(ctx.diag(
                "unsafe-dataflow",
                Severity::Error,
                t,
                "`unsafe` block with no bounds-establishing assert earlier in this function",
                "establish the bounds the raw operations rely on with `assert!`/\
                 `debug_assert!` before the block, or justify per site with \
                 `// ts3-lint: allow(unsafe-dataflow) <reason>`",
            ));
        }
    }
}

/// If token `i` is the string argument of a `std::env::var` /
/// `var_os` call naming a `TS3_*` knob, return the knob name.
pub(crate) fn env_read_at(ctx: &FileCtx, i: usize) -> Option<String> {
    let t = &ctx.tokens[i];
    if t.kind != TokKind::Str || !t.text.starts_with("\"TS3_") {
        return None;
    }
    let open = ctx.prev_code(i.checked_sub(1)?)?;
    if ctx.tokens[open].text != "(" {
        return None;
    }
    let callee = ctx.prev_code(open.checked_sub(1)?)?;
    let callee = &ctx.tokens[callee];
    if callee.kind != TokKind::Ident || (callee.text != "var" && callee.text != "var_os") {
        return None;
    }
    let name = t.text.trim_matches('"');
    let well_formed = name.starts_with("TS3_")
        && name.bytes().all(|b| b.is_ascii_uppercase() || b.is_ascii_digit() || b == b'_');
    well_formed.then(|| name.to_string())
}

/// **env-registry** (per-file half) — every `std::env::var("TS3_…")`
/// read must name a knob in the committed registry (`ts3lint.json`
/// `env_registry`), so configuration surface cannot ship undocumented.
/// The workspace pass adds the converse checks: registered knobs must
/// actually be read somewhere and must appear in README.md.
pub fn env_registry(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    for i in 0..ctx.tokens.len() {
        let Some(name) = env_read_at(ctx, i) else { continue };
        if ctx.cfg.env_registry.iter().any(|e| e == &name) {
            continue;
        }
        out.push(ctx.diag(
            "env-registry",
            Severity::Error,
            &ctx.tokens[i],
            format!("env knob `{name}` is read but not in the committed registry"),
            "add it to `env_registry` in ts3lint.json and document it in README.md, \
             or rename the variable out of the TS3_* namespace",
        ));
    }
}

/// **hermetic-imports** — `use`/`extern crate` may only name `std`,
/// `core`, `alloc`, path keywords, or in-workspace `ts3*` crates. This
/// is the source-level replacement for the `cargo tree` grep in
/// verify.sh gate 4, and unlike that grep it also catches
/// dev-dependencies and doc(hidden) leaks.
pub fn hermetic_imports(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    // Uniform paths (edition ≥2018) let `use` start from any name in
    // scope: `mod parse; pub use parse::ParseError;` or
    // `use std::fmt; … use fmt::Write as _;` are legal and hermetic.
    // Collect those in-scope names first so only genuinely external
    // roots are flagged.
    let scope = in_scope_names(ctx);
    let mut i = 0;
    while i < ctx.tokens.len() {
        let t = &ctx.tokens[i];
        if t.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        if t.text == "extern" {
            let kw = ctx.next_code(i + 1);
            let name = kw.and_then(|k| ctx.next_code(k + 1));
            if let (Some(k), Some(n)) = (kw, name) {
                if ctx.tokens[k].text == "crate" && ctx.tokens[n].kind == TokKind::Ident {
                    check_root(ctx, n, &scope, out);
                }
            }
        } else if t.text == "use" {
            i = check_use_tree(ctx, i + 1, &scope, out);
            continue;
        }
        i += 1;
    }
}

/// Names usable as a `use` root besides the allowed ones: modules
/// declared in this file, and every identifier appearing in a `use`
/// statement whose own root is allowed (an over-approximation of what
/// such a statement can bring into scope — leaf names and `as`
/// aliases included).
fn in_scope_names(ctx: &FileCtx) -> Vec<String> {
    let mut scope = Vec::new();
    let mut i = 0;
    while i < ctx.tokens.len() {
        let t = &ctx.tokens[i];
        if t.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        if t.text == "mod" {
            if let Some(n) = ctx.next_code(i + 1) {
                if ctx.tokens[n].kind == TokKind::Ident {
                    scope.push(ctx.tokens[n].text.clone());
                }
            }
        } else if t.text == "use" {
            // Gather the statement's tokens up to `;`.
            let mut idents = Vec::new();
            let mut j = i + 1;
            while let Some(k) = ctx.next_code(j) {
                let tok = &ctx.tokens[k];
                if tok.text == ";" {
                    break;
                }
                if tok.kind == TokKind::Ident {
                    idents.push(tok.text.clone());
                }
                j = k + 1;
            }
            let root_allowed = idents.first().is_some_and(|r| {
                let r = r.strip_prefix("r#").unwrap_or(r);
                ALLOWED_IMPORT_ROOTS.contains(&r) || r.starts_with("ts3")
            });
            if root_allowed {
                scope.extend(idents);
            }
        }
        i += 1;
    }
    scope
}

/// Check the root segment(s) of a use tree starting after the `use`
/// keyword; returns the index to resume scanning from. Handles
/// `use a::b;`, `use ::a;`, and top-level groups `use {a::x, b::y};`.
fn check_use_tree(ctx: &FileCtx, from: usize, scope: &[String], out: &mut Vec<Diagnostic>) -> usize {
    let Some(first) = ctx.next_code(from) else { return from };
    let mut i = first;
    if ctx.tokens[i].text == "::" {
        i = match ctx.next_code(i + 1) {
            Some(n) => n,
            None => return i,
        };
    }
    if ctx.tokens[i].text == "{" {
        // Top-level group: the first ident after `{` or each top-level
        // `,` is a root.
        let mut depth = 1i32;
        let mut expect_root = true;
        let mut j = i + 1;
        while let Some(k) = ctx.next_code(j) {
            let tok = &ctx.tokens[k];
            match tok.text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return k + 1;
                    }
                }
                "," if depth == 1 => expect_root = true,
                _ => {
                    if expect_root && tok.kind == TokKind::Ident {
                        check_root(ctx, k, scope, out);
                    }
                    expect_root = false;
                }
            }
            j = k + 1;
        }
        return j;
    }
    if ctx.tokens[i].kind == TokKind::Ident {
        check_root(ctx, i, scope, out);
    }
    i + 1
}

/// Report token `i` unless it is an allowed import root.
fn check_root(ctx: &FileCtx, i: usize, scope: &[String], out: &mut Vec<Diagnostic>) {
    let t = &ctx.tokens[i];
    let name = t.text.strip_prefix("r#").unwrap_or(&t.text);
    if ALLOWED_IMPORT_ROOTS.contains(&name)
        || name.starts_with("ts3")
        || scope.iter().any(|s| s == name)
    {
        return;
    }
    out.push(ctx.diag(
        "hermetic-imports",
        Severity::Error,
        t,
        format!("import of non-workspace crate `{name}`"),
        "this workspace is hermetic: only std/core/alloc and in-tree ts3* crates \
         may be imported (see DESIGN.md §5)",
    ));
}
