//! Workspace file discovery and file-role classification.

use crate::config::Config;
use std::path::{Path, PathBuf};

/// What role a source file plays; rules scope themselves by this.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library code: `crates/*/src/**` (excluding `src/bin`) and the
    /// workspace root `src/**`. The determinism rules bite hardest here.
    Lib,
    /// Binary targets: `src/bin/**` anywhere, plus `examples/**`.
    Bin,
    /// Test code: any `tests/` directory, plus `benches/`.
    Test,
}

/// One file scheduled for linting.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators (stable across
    /// platforms, and what config lists and reports use).
    pub rel_path: String,
    /// Absolute path for reading.
    pub abs_path: PathBuf,
    /// Role classification.
    pub kind: FileKind,
}

/// Classify a workspace-relative path.
pub fn classify(rel: &str) -> FileKind {
    let parts: Vec<&str> = rel.split('/').collect();
    if parts.contains(&"tests") || parts.contains(&"benches") {
        FileKind::Test
    } else if parts.contains(&"examples") || parts.windows(2).any(|w| w == ["src", "bin"]) {
        FileKind::Bin
    } else {
        FileKind::Lib
    }
}

/// Walk the configured roots under `workspace_root` and collect every
/// `.rs` file, sorted by relative path so reports and JSON output are
/// byte-stable across filesystems.
pub fn discover(workspace_root: &Path, cfg: &Config) -> std::io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    for root in &cfg.roots {
        let dir = workspace_root.join(root);
        if dir.is_dir() {
            walk_dir(workspace_root, &dir, cfg, &mut files)?;
        }
    }
    files.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
    Ok(files)
}

fn walk_dir(
    workspace_root: &Path,
    dir: &Path,
    cfg: &Config,
    out: &mut Vec<SourceFile>,
) -> std::io::Result<()> {
    // Sort entries for a deterministic walk order independent of the
    // filesystem's readdir order.
    let mut entries: Vec<PathBuf> =
        std::fs::read_dir(dir)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if cfg.skip_dirs.iter().any(|s| s == name) || name.starts_with('.') {
                continue;
            }
            walk_dir(workspace_root, &path, cfg, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(workspace_root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            let kind = classify(&rel);
            out.push(SourceFile { rel_path: rel, abs_path: path, kind });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_covers_the_workspace_shapes() {
        assert_eq!(classify("crates/tensor/src/gemm.rs"), FileKind::Lib);
        assert_eq!(classify("src/lib.rs"), FileKind::Lib);
        assert_eq!(classify("crates/bench/src/bin/table2.rs"), FileKind::Bin);
        assert_eq!(classify("examples/quickstart.rs"), FileKind::Bin);
        assert_eq!(classify("crates/obs/tests/no_alloc.rs"), FileKind::Test);
        assert_eq!(classify("tests/integration_pipeline.rs"), FileKind::Test);
        assert_eq!(classify("crates/bench/benches/kernels.rs"), FileKind::Test);
    }
}
