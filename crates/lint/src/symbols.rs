//! Pass 1 of the workspace analysis: per-file symbol tables extracted
//! from the token stream.
//!
//! [`extract`] distils one [`FileCtx`] into the owned facts the graph
//! rules need — `ts3*` path roots (dependency edges), nested-lock
//! acquisition sites, `TS3_*` environment reads — plus the file's allow
//! directives, moved out of the context so suppression and hygiene can
//! run *after* the graph rules have contributed their diagnostics.

use crate::engine::{Directive, FileCtx};
use crate::lexer::TokKind;
use crate::rules::env_read_at;
use crate::walk::FileKind;

/// One `ts3*` path root used by a file — a dependency edge candidate.
#[derive(Debug)]
pub(crate) struct UseEdge {
    /// The root identifier as written (`ts3_tensor`, `ts3net_core`).
    pub root: String,
    pub line: u32,
    pub col: u32,
}

/// One `.lock()` / `.try_lock()` call site.
#[derive(Debug)]
pub(crate) struct LockSite {
    /// Lock class: `<file-stem>.<receiver>` (e.g. `par.workers`).
    pub class: String,
    pub line: u32,
    pub col: u32,
    /// Index of the innermost enclosing `fn` body (site order within a
    /// function approximates nesting order), `None` at top level.
    pub fn_idx: Option<usize>,
}

/// One `std::env::var("TS3_…")` read. (Per-site positions are reported
/// by the per-file half of `env-registry`; the workspace half only
/// needs the set of names.)
#[derive(Debug)]
pub(crate) struct EnvRead {
    pub name: String,
}

/// The symbol table of one file.
#[derive(Debug)]
pub(crate) struct FileSymbols {
    pub rel_path: String,
    /// Distinct `ts3*` roots, first site each.
    pub ts3_uses: Vec<UseEdge>,
    /// Lock sites in token order (non-test code only).
    pub lock_sites: Vec<LockSite>,
    pub env_reads: Vec<EnvRead>,
    /// Allow directives, moved out of the context.
    pub directives: Vec<Directive>,
}

/// Extract the symbol table, taking ownership of the context's
/// directives (the context is not usable for suppression afterwards).
pub(crate) fn extract(ctx: &mut FileCtx) -> FileSymbols {
    let mut ts3_uses: Vec<UseEdge> = Vec::new();
    let mut lock_sites = Vec::new();
    let mut env_reads = Vec::new();
    let stem = file_stem(ctx.rel_path);

    for i in 0..ctx.tokens.len() {
        let t = &ctx.tokens[i];
        match t.kind {
            TokKind::Ident => {}
            TokKind::Str => {
                if let Some(name) = env_read_at(ctx, i) {
                    env_reads.push(EnvRead { name });
                }
                continue;
            }
            _ => continue,
        }
        // Dependency edges: any `ts3*` identifier used as a path root
        // (`ts3_x::…`). Catches both `use ts3_x::y;` and fully
        // qualified call sites; one edge per distinct root.
        if t.text.starts_with("ts3")
            && ctx.next_code(i + 1).is_some_and(|n| ctx.tokens[n].text == "::")
            && !ts3_uses.iter().any(|u| u.root == t.text)
        {
            ts3_uses.push(UseEdge { root: t.text.clone(), line: t.line, col: t.col });
        }
        // Lock sites: `<receiver>.lock()` / `.try_lock()`. Test code is
        // exempt — tests serialise themselves with ad-hoc guards that
        // are not part of the production acquisition order.
        if (t.text == "lock" || t.text == "try_lock")
            && ctx.kind != FileKind::Test
            && !ctx.in_test_code(t.line)
            && ctx.next_code(i + 1).is_some_and(|n| ctx.tokens[n].text == "(")
        {
            let dot = i.checked_sub(1).and_then(|j| ctx.prev_code(j));
            if dot.is_some_and(|d| ctx.tokens[d].text == ".") {
                let receiver = receiver_ident(ctx, dot.unwrap_or(0));
                lock_sites.push(LockSite {
                    class: format!("{stem}.{receiver}"),
                    line: t.line,
                    col: t.col,
                    fn_idx: ctx.enclosing_fn(i),
                });
            }
        }
    }

    FileSymbols {
        rel_path: ctx.rel_path.to_string(),
        ts3_uses,
        lock_sites,
        env_reads,
        directives: std::mem::take(&mut ctx.directives),
    }
}

/// File stem of a workspace-relative path (`crates/tensor/src/par.rs`
/// → `par`), used as the lock-class namespace.
fn file_stem(rel_path: &str) -> &str {
    let name = rel_path.rsplit('/').next().unwrap_or(rel_path);
    name.strip_suffix(".rs").unwrap_or(name)
}

/// Walk back from the `.` before `lock` to the receiver identifier,
/// skipping one trailing call/index suffix: `cache.lock()` → `cache`,
/// `collector().lock()` → `collector`, `self.0.state.lock()` →
/// `state`. Falls back to `expr` for anything more exotic, which still
/// yields a stable (if coarse) class name.
fn receiver_ident(ctx: &FileCtx, dot: usize) -> String {
    let Some(mut j) = dot.checked_sub(1).and_then(|k| ctx.prev_code(k)) else {
        return "expr".to_string();
    };
    // Skip matched `( … )` / `[ … ]` suffixes (e.g. the call parens of
    // `collector()`).
    while matches!(ctx.tokens[j].text.as_str(), ")" | "]") {
        let close = ctx.tokens[j].text.clone();
        let open = if close == ")" { "(" } else { "[" };
        let mut depth = 1i32;
        loop {
            let Some(k) = j.checked_sub(1).and_then(|k| ctx.prev_code(k)) else {
                return "expr".to_string();
            };
            j = k;
            if ctx.tokens[j].text == close {
                depth += 1;
            } else if ctx.tokens[j].text == open {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
        }
        let Some(k) = j.checked_sub(1).and_then(|k| ctx.prev_code(k)) else {
            return "expr".to_string();
        };
        j = k;
    }
    if ctx.tokens[j].kind == TokKind::Ident {
        ctx.tokens[j].text.clone()
    } else {
        "expr".to_string()
    }
}
