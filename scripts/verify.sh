#!/usr/bin/env bash
# Tier-1 verification gate for the TS3Net reproduction workspace.
#
# Everything runs --offline: this workspace has no external dependencies
# (see DESIGN.md §5), so a clean checkout must pass with no network and
# no registry cache. Referenced from README.md and the repo verify skill.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== 1/11 release build (offline) =="
cargo build --release --workspace --offline

echo "== 2/11 test suite =="
cargo test -q --workspace --offline

echo "== 3/11 rustdoc incl. private items (warnings are errors) =="
# --document-private-items keeps internal doc comments (executor loop,
# plan lowering, kernel internals) to the same standard as the public
# API: a broken intra-doc link in a private item fails the gate.
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --offline \
  --document-private-items

echo "== 4/11 dependency hermeticity =="
if cargo tree --workspace --edges normal --offline | grep -Ev '^\s*$' \
    | grep -oE '[a-zA-Z0-9_-]+ v[0-9][^ ]*' | grep -v '^ts3' ; then
  echo "FAIL: non-workspace crate in the dependency tree" >&2
  exit 1
fi
echo "ok: dependency tree is ts3-* only"

echo "== 5/11 observability smoke (TS3_TRACE=1 trace manifests) =="
# table2 exercises the manifest plumbing without training; table4 on one
# dataset exercises epoch events and instrumented kernels. trace_check
# parses each manifest with ts3-json and asserts its contents.
TS3_TRACE=1 ./target/release/table2 --smoke > /dev/null
./target/release/trace_check results/table2_smoke.trace.json
TS3_TRACE=1 ./target/release/table4 --smoke ETTh1 > /dev/null 2>&1
./target/release/trace_check results/table4_smoke.trace.json \
  --require-epoch --require-kernel-span
echo "ok: trace manifests parse and carry epoch events + kernel spans"

echo "== 6/11 kernel bench smoke + regression gate =="
# Reduced kernel subset at a 40 ms budget against the committed smoke
# baseline. The +50% threshold is deliberately generous: smoke medians
# are short-budget, and the gate exists to catch order-of-magnitude
# kernel regressions (a lost vector path, an accidental O(n^2) fallback),
# not single-digit drift. Wrapped in `timeout` so a hung kernel fails
# the gate instead of wedging CI.
timeout 900 ./scripts/bench.sh --smoke --out-dir target/bench-smoke > /dev/null
./target/release/bench_compare results/BENCH_kernels_smoke.json \
  target/bench-smoke/BENCH_kernels_smoke.json --threshold 50
# On hosts that advertise AVX2, the explicit SIMD kernels must actually
# have run during the smoke: the bench traces with TS3_TRACE=1, so the
# `.sched.` dispatch counters land in its manifest. (Counters only —
# outputs are bitwise identical across dispatch, see crates/tensor/src/simd.rs.)
if grep -q avx2 /proc/cpuinfo 2>/dev/null; then
  ./target/release/trace_check results/BENCH_kernels_smoke.trace.json \
    --require-counter tensor.gemm.sched.dispatch_avx2 \
    --require-counter signal.fft.sched.dispatch_avx2
  echo "ok: AVX2 dispatch counters ticked during the bench smoke"
fi
# The lint precondition inside bench.sh also records its own wall time
# and diagnostic count as a ts3.bench.v1 row; pin it against the
# committed baseline so the analyzer cannot silently grow quadratic.
./target/release/bench_compare results/BENCH_lint_smoke.json \
  target/bench-smoke/BENCH_lint_smoke.json --threshold 100

echo "== 7/11 serving + streaming bench smoke + regression gates =="
# Closed-loop serving latency (ts3-serve) at 1/8/64 clients against the
# committed baseline. The +100% threshold is wider than the kernel
# gate's: end-to-end latency includes channel wakeups and scheduling
# noise, and this gate exists to catch a broken batching path (e.g. the
# coalescer degenerating to batch=1), which shifts serve_rate by far
# more than 2x. Still gated by `timeout` like the kernel smoke.
timeout 900 env TS3_THREADS=2 ./target/release/serve_bench --smoke \
  --out-dir target/serve-smoke > /dev/null
./target/release/bench_compare results/BENCH_serve_smoke.json \
  target/serve-smoke/BENCH_serve_smoke.json --threshold 100
# Streaming decomposition: first the correctness contract (every pulse
# bitwise-equal to batch on the same trailing window — the suite also
# runs in gate 2, but a bench number without its equivalence proof is
# meaningless, so the smoke gate re-asserts it explicitly), then the
# per-sample cost. stream_bench itself fails if streamed cost is not
# >= 5x below recompute-from-scratch on the 96-step window; on top of
# that, bench_compare pins absolute drift against the committed
# baseline at the same generous +100%.
cargo test -q -p ts3-stream --offline --test pulse_equivalence > /dev/null
timeout 900 env TS3_THREADS=1 ./target/release/stream_bench --smoke \
  --out-dir target/stream-smoke > /dev/null
./target/release/bench_compare results/BENCH_stream_smoke.json \
  target/stream-smoke/BENCH_stream_smoke.json --threshold 100

echo "== 8/11 docs liveness (crate inventories) =="
# Every workspace crate must appear in ARCHITECTURE.md's crate map and
# DESIGN.md's component inventory, so the two documents cannot silently
# rot as crates are added.
missing=0
for manifest in crates/*/Cargo.toml; do
  crate=$(sed -n 's/^name = "\(.*\)"$/\1/p' "$manifest" | head -n1)
  for doc in ARCHITECTURE.md DESIGN.md; do
    if ! grep -q "$crate" "$doc"; then
      echo "FAIL: $crate (from $manifest) is missing from $doc" >&2
      missing=1
    fi
  done
done
[ "$missing" -eq 0 ] || exit 1
echo "ok: all $(ls -d crates/*/ | wc -l) crates are documented in ARCHITECTURE.md and DESIGN.md"

echo "== 9/11 static analysis (ts3lint --deny-all) =="
# The in-workspace lint pass (crates/lint): determinism, hermeticity and
# safety contracts as machine-checked rules. --deny-all promotes
# warnings (stale allow directives) to failures so the committed tree
# stays exactly clean, not merely error-free.
./target/release/ts3lint --deny-all

echo "== 10/11 serving telemetry (timeline + flight + exposition) =="
# serve_obs drives a stalled request sim (forced deadline-miss burst)
# and an online streaming sim under tracing, then writes every ts3-obs
# v2 artifact. trace_check validates the ts3.timeline.v1 and
# ts3.flight.v1 schemas (the flight check fails unless the SLO trigger
# actually fired); the text exposition is tick-valued only, so two runs
# must be byte-identical; the folded-stacks profile must be non-empty.
timeout 900 env TS3_TRACE=1 TS3_THREADS=2 ./target/release/serve_obs --smoke \
  --out-dir target/obs-a > /dev/null
timeout 900 env TS3_TRACE=1 TS3_THREADS=2 ./target/release/serve_obs --smoke \
  --out-dir target/obs-b > /dev/null
./target/release/trace_check --timeline target/obs-a/serve_obs.timeline.json
./target/release/trace_check --flight target/obs-a/serve_obs.flight.json
cmp target/obs-a/serve_obs.prom target/obs-b/serve_obs.prom
test -s target/obs-a/serve_obs.folded
echo "ok: timeline/flight validate, exposition byte-stable, folded stacks non-empty"

echo "== 11/11 graph lint + schedule-fuzz race harness =="
# The graph rule families (crate layering, lock order, unsafe dataflow,
# env registry, config liveness) re-run in isolation with a JSON report,
# and trace_check validates the ts3.lint.v2 schema: per-rule timings
# plus the resolved crate DAG must be present and internally closed.
./target/release/ts3lint --deny-all \
  --rule crate-layering --rule lock-order --rule unsafe-dataflow \
  --rule env-registry --rule config-liveness \
  --json target/lint-graph.json
./target/release/trace_check --lint target/lint-graph.json
# Deterministic schedule fuzzing: 16 seeded worker-schedule permutations
# x thread counts {1,2,4} must produce bitwise-identical matmul / FFT /
# decomposition / forward-pass outputs. TS3_SCHED_FUZZ=7 additionally
# proves the env knob wiring (the test asserts the knob was picked up).
TS3_SCHED_FUZZ=7 cargo test -q --offline --test sched_fuzz_sweep

echo "verify: all gates passed"
