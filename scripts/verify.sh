#!/usr/bin/env bash
# Tier-1 verification gate for the TS3Net reproduction workspace.
#
# Everything runs --offline: this workspace has no external dependencies
# (see DESIGN.md §5), so a clean checkout must pass with no network and
# no registry cache. Referenced from README.md and the repo verify skill.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== 1/5 release build (offline) =="
cargo build --release --workspace --offline

echo "== 2/5 test suite =="
cargo test -q --workspace --offline

echo "== 3/5 rustdoc (warnings are errors) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --offline

echo "== 4/5 dependency hermeticity =="
if cargo tree --workspace --edges normal --offline | grep -Ev '^\s*$' \
    | grep -oE '[a-zA-Z0-9_-]+ v[0-9][^ ]*' | grep -v '^ts3' ; then
  echo "FAIL: non-workspace crate in the dependency tree" >&2
  exit 1
fi
echo "ok: dependency tree is ts3-* only"

echo "== 5/5 observability smoke (TS3_TRACE=1 trace manifests) =="
# table2 exercises the manifest plumbing without training; table4 on one
# dataset exercises epoch events and instrumented kernels. trace_check
# parses each manifest with ts3-json and asserts its contents.
TS3_TRACE=1 ./target/release/table2 --smoke > /dev/null
./target/release/trace_check results/table2_smoke.trace.json
TS3_TRACE=1 ./target/release/table4 --smoke ETTh1 > /dev/null 2>&1
./target/release/trace_check results/table4_smoke.trace.json \
  --require-epoch --require-kernel-span
echo "ok: trace manifests parse and carry epoch events + kernel spans"

echo "verify: all gates passed"
