#!/usr/bin/env bash
# Tier-1 verification gate for the TS3Net reproduction workspace.
#
# Everything runs --offline: this workspace has no external dependencies
# (see DESIGN.md §5), so a clean checkout must pass with no network and
# no registry cache. Referenced from README.md and the repo verify skill.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== 1/7 release build (offline) =="
cargo build --release --workspace --offline

echo "== 2/7 test suite =="
cargo test -q --workspace --offline

echo "== 3/7 rustdoc (warnings are errors) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --offline

echo "== 4/7 dependency hermeticity =="
if cargo tree --workspace --edges normal --offline | grep -Ev '^\s*$' \
    | grep -oE '[a-zA-Z0-9_-]+ v[0-9][^ ]*' | grep -v '^ts3' ; then
  echo "FAIL: non-workspace crate in the dependency tree" >&2
  exit 1
fi
echo "ok: dependency tree is ts3-* only"

echo "== 5/7 observability smoke (TS3_TRACE=1 trace manifests) =="
# table2 exercises the manifest plumbing without training; table4 on one
# dataset exercises epoch events and instrumented kernels. trace_check
# parses each manifest with ts3-json and asserts its contents.
TS3_TRACE=1 ./target/release/table2 --smoke > /dev/null
./target/release/trace_check results/table2_smoke.trace.json
TS3_TRACE=1 ./target/release/table4 --smoke ETTh1 > /dev/null 2>&1
./target/release/trace_check results/table4_smoke.trace.json \
  --require-epoch --require-kernel-span
echo "ok: trace manifests parse and carry epoch events + kernel spans"

echo "== 6/7 kernel bench smoke + regression gate =="
# Reduced kernel subset at a 40 ms budget against the committed smoke
# baseline. The +50% threshold is deliberately generous: smoke medians
# are short-budget, and the gate exists to catch order-of-magnitude
# kernel regressions (a lost vector path, an accidental O(n^2) fallback),
# not single-digit drift. Wrapped in `timeout` so a hung kernel fails
# the gate instead of wedging CI.
timeout 900 ./scripts/bench.sh --smoke --out-dir target/bench-smoke > /dev/null
./target/release/bench_compare results/BENCH_kernels_smoke.json \
  target/bench-smoke/BENCH_kernels_smoke.json --threshold 50

echo "== 7/7 static analysis (ts3lint --deny-all) =="
# The in-workspace lint pass (crates/lint): determinism, hermeticity and
# safety contracts as machine-checked rules. --deny-all promotes
# warnings (stale allow directives) to failures so the committed tree
# stays exactly clean, not merely error-free.
./target/release/ts3lint --deny-all

echo "verify: all gates passed"
