#!/usr/bin/env bash
# Tier-1 verification gate for the TS3Net reproduction workspace.
#
# Everything runs --offline: this workspace has no external dependencies
# (see DESIGN.md §5), so a clean checkout must pass with no network and
# no registry cache. Referenced from README.md and the repo verify skill.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== 1/4 release build (offline) =="
cargo build --release --workspace --offline

echo "== 2/4 test suite =="
cargo test -q --workspace --offline

echo "== 3/4 rustdoc (warnings are errors) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --offline

echo "== 4/4 dependency hermeticity =="
if cargo tree --workspace --edges normal --offline | grep -Ev '^\s*$' \
    | grep -oE '[a-zA-Z0-9_-]+ v[0-9][^ ]*' | grep -v '^ts3' ; then
  echo "FAIL: non-workspace crate in the dependency tree" >&2
  exit 1
fi
echo "ok: dependency tree is ts3-* only"

echo "verify: all gates passed"
