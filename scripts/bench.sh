#!/usr/bin/env bash
# Benchmark driver for the TS3Net reproduction workspace.
#
#   scripts/bench.sh [--smoke] [--out-dir DIR]
#
# Full mode (default) runs both opt-in bench targets at the standard
# measurement budget and writes machine-readable results to DIR
# (default results/): BENCH_kernels.json and BENCH_model.json. The
# committed copies under results/ are the regression baselines for
# `bench_compare`. Tracing is NOT forced on: one span record costs
# ~100 ns, which distorts sub-µs kernels (cwt/inverse runs ~180 ns
# untraced vs ~330 ns traced). Opt in with
# `TS3_TRACE=1 TS3_TRACE_MAX_SPANS=2000 scripts/bench.sh` to
# additionally emit ts3.trace.v1 run manifests
# (results/BENCH_*.trace.json) — that is how the committed manifests
# were produced (the span cap keeps them compact; counters are
# unaffected); their timings are not comparable to untraced JSONs.
#
# Smoke mode (--smoke) is the verify.sh gate: the reduced kernel subset
# only (TS3_BENCH_SMOKE=1), a 40 ms per-bench budget, a 2-thread cap so
# the pool dispatch path is exercised deterministically, writing
# BENCH_kernels_smoke.json to DIR. Compare against the committed
# results/BENCH_kernels_smoke.json with a generous threshold — smoke
# medians are short-budget and noisier than full ones:
#
#   ./target/release/bench_compare results/BENCH_kernels_smoke.json \
#       DIR/BENCH_kernels_smoke.json --threshold 50
#
# All medians are wall-clock on the host CPU (built with
# target-cpu=native, see .cargo/config.toml): baselines are only
# meaningful against runs from the same machine.
set -euo pipefail
cd "$(dirname "$0")/.."

SMOKE=0
OUT_DIR=results
while [[ $# -gt 0 ]]; do
  case "$1" in
    --smoke) SMOKE=1 ;;
    --out-dir)
      [[ $# -ge 2 ]] || { echo "--out-dir needs an argument" >&2; exit 2; }
      OUT_DIR=$2
      shift
      ;;
    *) echo "usage: scripts/bench.sh [--smoke] [--out-dir DIR]" >&2; exit 2 ;;
  esac
  shift
done
# cargo runs bench binaries from the crate directory, so hand them an
# absolute output path.
mkdir -p "$OUT_DIR"
OUT_DIR=$(cd "$OUT_DIR" && pwd)

BENCH="cargo bench -p ts3-bench --features bench-harness --offline"

# Thread-scaling sweep (sweep/<kernel>/t<n> rows in the kernel JSON):
# comma list of thread caps, overridable via TS3_BENCH_THREAD_SWEEP.
# The defaults match the committed baselines — bench_compare fails on
# missing baseline rows, so runs must produce at least these curves.
SWEEP_SMOKE=${TS3_BENCH_THREAD_SWEEP:-1,2}
SWEEP_FULL=${TS3_BENCH_THREAD_SWEEP:-1,2,4}

if [[ $SMOKE -eq 1 ]]; then
  # Smoke results feed the committed regression baselines, so refuse to
  # benchmark a tree that violates the workspace contracts: a HashMap or
  # wall-clock sneaking into a kernel would make the numbers themselves
  # nondeterministic.
  echo "== bench.sh: static analysis precondition (ts3lint --deny-all) =="
  # --bench-out records the lint pass itself (wall_ms + diagnostics) as
  # ts3.bench.v1 rows; verify gate 6 pins them against the committed
  # baseline like any other kernel.
  cargo run -q --release --offline -p ts3-lint --bin ts3lint -- --deny-all \
    --bench-out "$OUT_DIR/BENCH_lint_smoke.json"
  echo "== bench.sh: smoke (reduced kernels, 40 ms budget, 2 threads) =="
  TS3_BENCH_SMOKE=1 TS3_BENCH_MS=40 TS3_THREADS=2 TS3_TRACE=1 \
    TS3_TRACE_MAX_SPANS=2000 \
    TS3_BENCH_THREAD_SWEEP="$SWEEP_SMOKE" \
    TS3_BENCH_OUT="$OUT_DIR/BENCH_kernels_smoke.json" \
    $BENCH --bench kernels
else
  echo "== bench.sh: full kernel benchmarks =="
  TS3_BENCH_THREAD_SWEEP="$SWEEP_FULL" \
    TS3_BENCH_OUT="$OUT_DIR/BENCH_kernels.json" \
    $BENCH --bench kernels
  echo "== bench.sh: full model benchmarks =="
  TS3_BENCH_OUT="$OUT_DIR/BENCH_model.json" \
    $BENCH --bench model
fi
echo "bench.sh: results in $OUT_DIR"
