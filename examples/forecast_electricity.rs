//! Domain scenario 1 — power-grid load forecasting: train TS3Net on the
//! Electricity-like benchmark (hourly consumption of many clients with
//! daily/weekly periodicity and demand fluctuations) and compare against
//! DLinear and a persistence floor.
//!
//! ```sh
//! cargo run --release --example forecast_electricity
//! ```

use ts3_baselines::{BaselineConfig, DLinear};
use ts3_data::{spec_by_name, ForecastTask, Split};
use ts3_nn::{mae, mse, Adam, Average, Ctx, Optimizer};
use ts3net_core::{ForecastModel, TS3Net, TS3NetConfig};

fn evaluate(model: &dyn ForecastModel, task: &ForecastTask, n: usize) -> (f32, f32) {
    let mut ctx = Ctx::eval();
    let (mut a, mut b) = (Average::new(), Average::new());
    for i in 0..n.min(task.len(Split::Test)) {
        let (x, y) = task.window(Split::Test, i * 3 % task.len(Split::Test));
        let xb = x.reshape(&[1, x.shape()[0], x.shape()[1]]);
        let pred = model.forecast(&xb, &mut ctx);
        let pred = pred.value().reshape(y.shape());
        a.push(mse(&pred, &y));
        b.push(mae(&pred, &y));
    }
    (a.mean(), b.mean())
}

fn train(model: &dyn ForecastModel, task: &ForecastTask, steps: usize, lr: f32) {
    let mut opt = Adam::new(model.parameters(), lr);
    let mut ctx = Ctx::train(7);
    let batches = task.epoch_batches(Split::Train, 8, 1, Some(steps));
    for idx in &batches {
        let (x, y) = task.batch(Split::Train, idx);
        let loss = model.forecast(&x, &mut ctx).mse_loss(&y);
        opt.zero_grad();
        loss.backward();
        opt.clip_grad_norm(5.0);
        opt.step();
    }
}

fn main() {
    let mut spec = spec_by_name("Electricity").expect("catalog");
    spec.len = 1600; // keep the example fast
    spec.dims = 8;
    let raw = spec.generate(1);
    let (lookback, horizon) = (96usize, 96usize);
    let task = ForecastTask::new(&raw, lookback, horizon, spec.split);
    println!(
        "Electricity-like benchmark: {} clients, {} train windows, horizon {horizon}",
        task.channels(),
        task.len(Split::Train)
    );

    // Persistence floor.
    let (x0, y0) = task.window(Split::Test, 0);
    let last = x0.narrow(0, lookback - 1, 1).repeat_axis(0, horizon);
    println!("persistence window-0 MSE: {:.3}", mse(&last, &y0));

    // TS3Net.
    let ts3 = TS3Net::new(TS3NetConfig::scaled(task.channels(), lookback, horizon), 5);
    println!("\ntraining TS3Net ({} params)...", ts3.num_parameters());
    train(&ts3, &task, 60, 5e-3);
    let (m1, a1) = evaluate(&ts3, &task, 16);
    println!("TS3Net  test: MSE {m1:.3}  MAE {a1:.3}");

    // DLinear baseline.
    let dl = DLinear::new(&BaselineConfig::scaled(task.channels(), lookback, horizon), 5);
    println!("\ntraining DLinear ({} params)...", dl.num_parameters());
    train(&dl, &task, 60, 5e-3);
    let (m2, a2) = evaluate(&dl, &task, 16);
    println!("DLinear test: MSE {m2:.3}  MAE {a2:.3}");

    println!(
        "\nTS3Net vs DLinear MSE ratio: {:.2} (< 1 means TS3Net wins)",
        m1 / m2
    );
}
