//! Quickstart: decompose a series into trend / regular / fluctuant parts
//! with the paper's triple decomposition, then train a small TS3Net to
//! forecast it.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ts3_nn::{Adam, Ctx, Optimizer};
use ts3_signal::{triple_decompose, TripleConfig};
use ts3_tensor::Tensor;
use ts3net_core::{ForecastModel, TS3Net, TS3NetConfig};

fn main() {
    // 1. A toy series: trend + stable daily cycle + an amplitude-modulated
    //    component (the "fluctuant" ingredient TS3Net isolates).
    let t_total = 480usize;
    let series: Vec<f32> = (0..t_total)
        .map(|t| {
            let tf = t as f32;
            0.004 * tf
                + (std::f32::consts::TAU * tf / 24.0).sin()
                + (1.0 + 0.6 * (std::f32::consts::TAU * tf / 120.0).sin())
                    * 0.5
                    * (std::f32::consts::TAU * tf / 8.0).sin()
        })
        .collect();
    let x = Tensor::from_vec(series.clone(), &[t_total, 1]);

    // 2. Triple decomposition (paper Eq. 1-11).
    let d = triple_decompose(&x.narrow(0, 0, 192), &TripleConfig::default());
    let energy = |t: &Tensor| t.as_slice().iter().map(|v| v * v).sum::<f32>();
    println!("triple decomposition of the first 192 steps (T_f = {}):", d.t_f);
    println!("  trend energy     = {:.2}", energy(&d.trend));
    println!("  regular energy   = {:.2}", energy(&d.regular));
    println!("  fluctuant energy = {:.2}", energy(&d.fluctuant_1d));
    println!(
        "  reconstruction max error = {:.2e}",
        d.reconstruct().max_abs_diff(&x.narrow(0, 0, 192))
    );

    // 3. Train a small TS3Net: lookback 48 -> horizon 24.
    let (lookback, horizon) = (48usize, 24usize);
    let mut cfg = TS3NetConfig::scaled(1, lookback, horizon);
    cfg.lambda = 6;
    cfg.d_model = 8;
    cfg.d_hidden = 8;
    let model = TS3Net::new(cfg, 42);
    let mut opt = Adam::new(model.parameters(), 5e-3);
    let mut ctx = Ctx::train(0);
    println!("\ntraining TS3Net ({} parameters)...", model.num_parameters());
    for step in 0..40 {
        // One random window per step.
        let start = (step * 7) % (t_total - lookback - horizon);
        let xw = x.narrow(0, start, lookback).reshape(&[1, lookback, 1]);
        let yw = x.narrow(0, start + lookback, horizon).reshape(&[1, horizon, 1]);
        let loss = model.forecast(&xw, &mut ctx).mse_loss(&yw);
        opt.zero_grad();
        loss.backward();
        opt.step();
        if step % 10 == 0 {
            println!("  step {step:>3}: loss = {:.4}", loss.value().item());
        }
    }

    // 4. Forecast the tail of the series.
    let start = t_total - lookback - horizon;
    let xw = x.narrow(0, start, lookback).reshape(&[1, lookback, 1]);
    let truth = x.narrow(0, start + lookback, horizon);
    let mut ectx = Ctx::eval();
    let pred = model.forecast(&xw, &mut ectx);
    let mse = ts3_nn::mse(&pred.value().reshape(&[horizon, 1]), &truth);
    println!("\nforecast MSE on the held-out tail: {mse:.4}");

    // 5. Checkpoint the trained weights and restore them into a fresh
    //    model: the forecasts must be bit-identical.
    let ckpt_path = std::env::temp_dir().join("ts3net_quickstart.json");
    let snapshot = ts3_nn::Checkpoint::capture(&model.parameters()).expect("capture checkpoint");
    snapshot.save(&ckpt_path).expect("save checkpoint");
    let restored = TS3Net::new(
        {
            let mut c = TS3NetConfig::scaled(1, lookback, horizon);
            c.lambda = 6;
            c.d_model = 8;
            c.d_hidden = 8;
            c
        },
        7, // different seed: weights come from the checkpoint
    );
    ts3_nn::Checkpoint::load(&ckpt_path)
        .expect("load checkpoint")
        .restore(&restored.parameters())
        .expect("restore weights");
    let pred2 = restored.forecast(&xw, &mut ectx);
    println!(
        "checkpoint round-trip max forecast diff: {:.2e} ({})",
        pred.value().max_abs_diff(pred2.value()),
        ckpt_path.display()
    );
    std::fs::remove_file(&ckpt_path).ok();
    println!("done.");
}
