//! Domain scenario 2 — sensor-gap imputation: randomly hide 25% of the
//! points of Weather-like meteorological series and reconstruct them
//! with the TS3Net imputer, comparing against a mean-fill floor.
//!
//! ```sh
//! cargo run --release --example impute_weather
//! ```

use ts3_baselines::mean_fill;
use ts3_data::{mask_batch, spec_by_name, ForecastTask, Split};
use ts3_nn::{masked_mae, masked_mse, Adam, Average, Ctx, Optimizer};
use ts3net_core::{ImputationModel, TS3NetConfig, TS3NetImputer};

fn main() {
    let mut spec = spec_by_name("Weather").expect("catalog");
    spec.len = 1400;
    spec.dims = 6;
    let raw = spec.generate(3);
    let window = 96usize;
    let task = ForecastTask::new(&raw, window, window, spec.split);
    println!(
        "Weather-like benchmark: {} indicators, {} train windows, 25% of points hidden",
        task.channels(),
        task.len(Split::Train)
    );

    let mut cfg = TS3NetConfig::scaled(task.channels(), window, window);
    cfg.dropout = 0.05;
    let model = TS3NetImputer::new(cfg, 11);
    let mut opt = Adam::new(model.parameters(), 5e-3);
    let mut ctx = Ctx::train(0);
    println!("training TS3Net imputer ({} params)...", model.parameters().iter().map(|p| p.numel()).sum::<usize>());
    let batches = task.epoch_batches(Split::Train, 8, 2, Some(50));
    for (bi, idx) in batches.iter().enumerate() {
        let (x, _) = task.batch(Split::Train, idx);
        let mb = mask_batch(&x, 0.25, bi as u64);
        let loss = model
            .impute(&mb.masked, &mb.mask, &mut ctx)
            .masked_mse_loss(&mb.target, &mb.mask);
        opt.zero_grad();
        loss.backward();
        opt.clip_grad_norm(5.0);
        opt.step();
        if bi % 10 == 0 {
            println!("  batch {bi:>3}: masked loss = {:.4}", loss.value().item());
        }
    }

    // Evaluate across the four mask ratios of the paper's Table V.
    let mut ectx = Ctx::eval();
    println!("\nmasked-point reconstruction error on the test split:");
    println!("{:>8}  {:>12}  {:>12}  {:>12}", "ratio", "TS3Net MSE", "TS3Net MAE", "meanfill MSE");
    for ratio in [0.125f32, 0.25, 0.375, 0.5] {
        let (mut m_model, mut a_model, mut m_fill) =
            (Average::new(), Average::new(), Average::new());
        let eval_batches = task.epoch_batches(Split::Test, 8, 0, Some(6));
        for (bi, idx) in eval_batches.iter().enumerate() {
            let (x, _) = task.batch(Split::Test, idx);
            let mb = mask_batch(&x, ratio, 900 + bi as u64);
            let pred = model.impute(&mb.masked, &mb.mask, &mut ectx);
            m_model.push(masked_mse(pred.value(), &mb.target, &mb.mask));
            a_model.push(masked_mae(pred.value(), &mb.target, &mb.mask));
            let filled = mean_fill(&mb.masked, &mb.mask);
            m_fill.push(masked_mse(&filled, &mb.target, &mb.mask));
        }
        println!(
            "{:>7.1}%  {:>12.4}  {:>12.4}  {:>12.4}",
            ratio * 100.0,
            m_model.mean(),
            a_model.mean(),
            m_fill.mean()
        );
    }
    println!("\n(TS3Net should sit well below the mean-fill floor at every ratio)");
}
