//! Domain scenario 3 — exploratory analysis: run the triple decomposition
//! on an ETTh2-like transformer-load series and inspect how the energy
//! splits between trend, regular and fluctuant parts, including the
//! temporal-frequency distribution and spectrum gradient of Fig. 5.
//!
//! ```sh
//! cargo run --release --example decompose_series
//! ```

use ts3_data::spec_by_name;
use ts3_signal::{
    dominant_period, topk_periods_multi, triple_decompose, TripleConfig, WaveletKind,
};
use ts3_tensor::Tensor;

fn energy(t: &Tensor) -> f32 {
    t.as_slice().iter().map(|v| v * v).sum()
}

fn main() {
    let spec = spec_by_name("ETTh2").expect("catalog");
    let raw = spec.generate(5);
    let window = 192usize;
    let start = raw.shape()[0] / 3;
    let x = raw.narrow(0, start, window).narrow(1, 0, 1);

    // Multi-periodicity analysis (paper Eq. 2).
    println!("top-3 periods of the window (Eq. 2):");
    for comp in topk_periods_multi(&x, 3) {
        println!(
            "  frequency {:>3} -> period {:>3} samples (amplitude {:.2})",
            comp.frequency, comp.period, comp.amplitude
        );
    }
    println!("dominant period T_f = {}", dominant_period(&x));

    // Triple decomposition under each wavelet generating function.
    for kind in WaveletKind::ALL {
        let cfg = TripleConfig { lambda: 16, wavelet: kind, ..Default::default() };
        let d = triple_decompose(&x, &cfg);
        let total = energy(&x).max(1e-9);
        println!(
            "\nwavelet {:>6}: trend {:>5.1}% | regular {:>5.1}% | fluctuant {:>5.1}% | recon err {:.2e}",
            kind.name(),
            100.0 * energy(&d.trend) / total,
            100.0 * energy(&d.regular) / total,
            100.0 * energy(&d.fluctuant_1d) / total,
            d.reconstruct().max_abs_diff(&x)
        );
        // Where does the spectrum gradient concentrate?
        let lambda = cfg.lambda;
        let mut per_band: Vec<f32> = (0..lambda)
            .map(|li| {
                (0..window)
                    .map(|t| d.fluctuant_2d.at(&[li, t, 0]).abs())
                    .sum::<f32>()
            })
            .collect();
        let max_band = per_band
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap_or(0);
        per_band.sort_by(|a, b| b.partial_cmp(a).unwrap());
        println!(
            "               spectrum gradient peaks in sub-band {} of {} (low index = low frequency)",
            max_band + 1,
            lambda
        );
    }
    println!("\n(the fluctuant share should rise with the wavelet order, which sharpens");
    println!(" temporal localisation — run `cargo run --release --bin fig5 -p ts3-bench`");
    println!(" for the full heat-map rendering of Fig. 5)");
}
