//! Workspace root for the TS3Net reproduction: re-exports of the crate
//! family so examples and integration tests have one import surface.
//!
//! * [`ts3_tensor`] — dense f32 tensors;
//! * [`ts3_signal`] — FFT / CWT / decomposition signal processing;
//! * [`ts3_autograd`] — reverse-mode automatic differentiation;
//! * [`ts3_nn`] — layers, optimisers, metrics;
//! * [`ts3_data`] — benchmark generators, windowing, masking;
//! * [`ts3net_core`] — the TS3Net model itself;
//! * [`ts3_baselines`] — the ten comparison models + TSD controls.

pub use ts3_autograd;
pub use ts3_baselines;
pub use ts3_data;
pub use ts3_nn;
pub use ts3_signal;
pub use ts3_tensor;
pub use ts3net_core;
