//! Cross-crate integration tests: the full data -> decomposition ->
//! model -> training pipeline, exercised end-to-end at tiny scale.

use ts3_data::{spec_by_name, ForecastTask, Split};
use ts3_nn::{mse, Adam, Ctx, Optimizer};
use ts3_signal::{triple_decompose, TripleConfig};
use ts3_tensor::Tensor;
use ts3net_core::{Ablation, ForecastModel, TS3Net, TS3NetConfig};

fn tiny_cfg(c: usize, lookback: usize, horizon: usize) -> TS3NetConfig {
    let mut cfg = TS3NetConfig::scaled(c, lookback, horizon);
    cfg.lambda = 4;
    cfg.d_model = 4;
    cfg.d_hidden = 4;
    cfg.dropout = 0.0;
    cfg
}

fn tiny_task() -> ForecastTask {
    let mut spec = spec_by_name("ETTh1").unwrap();
    spec.len = 420;
    spec.dims = 2;
    let raw = spec.generate(9);
    ForecastTask::new(&raw, 32, 16, spec.split)
}

#[test]
fn end_to_end_training_reduces_test_error() {
    let task = tiny_task();
    let model = TS3Net::new(tiny_cfg(task.channels(), 32, 16), 1);
    let mut ctx = Ctx::train(0);
    let eval = |model: &TS3Net| {
        let mut ectx = Ctx::eval();
        let idx: Vec<usize> = (0..task.len(Split::Test).min(8)).collect();
        let (x, y) = task.batch(Split::Test, &idx);
        let pred = model.forecast(&x, &mut ectx);
        mse(pred.value(), &y)
    };
    let before = eval(&model);
    let mut opt = Adam::new(model.parameters(), 5e-3);
    for step in 0..30 {
        let batches = task.epoch_batches(Split::Train, 4, step, Some(1));
        let (x, y) = task.batch(Split::Train, &batches[0]);
        let loss = model.forecast(&x, &mut ctx).mse_loss(&y);
        opt.zero_grad();
        loss.backward();
        opt.clip_grad_norm(5.0);
        opt.step();
    }
    let after = eval(&model);
    assert!(
        after < before,
        "training did not reduce test error: {before} -> {after}"
    );
}

#[test]
fn training_is_deterministic_under_fixed_seed() {
    let task = tiny_task();
    let run = || {
        let model = TS3Net::new(tiny_cfg(task.channels(), 32, 16), 3);
        let mut opt = Adam::new(model.parameters(), 2e-3);
        let mut ctx = Ctx::train(5);
        for step in 0..4 {
            let batches = task.epoch_batches(Split::Train, 4, step, Some(1));
            let (x, y) = task.batch(Split::Train, &batches[0]);
            let loss = model.forecast(&x, &mut ctx).mse_loss(&y);
            opt.zero_grad();
            loss.backward();
            opt.step();
        }
        let mut ectx = Ctx::eval();
        let (x, _) = task.batch(Split::Test, &[0]);
        model.forecast(&x, &mut ectx).value().clone()
    };
    let a = run();
    let b = run();
    assert!(a.allclose(&b, 1e-6), "two identical runs diverged");
}

#[test]
fn decomposition_feeds_model_consistently() {
    // The model's internal trend split must agree with the library-level
    // triple decomposition on the same window.
    let task = tiny_task();
    let (x, _) = task.window(Split::Train, 0);
    let d = triple_decompose(
        &x,
        &TripleConfig { lambda: 4, ..Default::default() },
    );
    let xb = x.reshape(&[1, 32, task.channels()]);
    let (trend, seasonal) = ts3net_core::batch_trend_split(
        &xb,
        &ts3_signal::decompose::DEFAULT_TREND_KERNELS,
    );
    assert!(trend
        .reshape(&[32, task.channels()])
        .allclose(&d.trend, 1e-4));
    assert!(seasonal
        .reshape(&[32, task.channels()])
        .allclose(&d.seasonal, 1e-4));
}

#[test]
fn full_model_beats_no_decomposition_ablation_on_fluctuant_data() {
    // On a series with strong amplitude modulation, the full TS3Net
    // should not do worse than the w/o-Both ablation after equal
    // training. (Weak form of the paper's Table VI claim at tiny scale.)
    let t_total = 360usize;
    let data: Vec<f32> = (0..t_total)
        .map(|t| {
            let tf = t as f32;
            let env = 1.0 + 0.8 * (std::f32::consts::TAU * tf / 90.0).sin();
            env * (std::f32::consts::TAU * tf / 12.0).sin() + 0.01 * tf
        })
        .collect();
    let raw = Tensor::from_vec(data, &[t_total, 1]);
    let task = ForecastTask::new(&raw, 32, 16, (0.6, 0.2, 0.2));
    let train_and_eval = |ablation: Ablation| {
        let model = TS3Net::new(tiny_cfg(1, 32, 16).with_ablation(ablation), 2);
        let mut opt = Adam::new(model.parameters(), 5e-3);
        let mut ctx = Ctx::train(1);
        for step in 0..15 {
            let batches = task.epoch_batches(Split::Train, 4, step, Some(1));
            let (x, y) = task.batch(Split::Train, &batches[0]);
            let loss = model.forecast(&x, &mut ctx).mse_loss(&y);
            opt.zero_grad();
            loss.backward();
            opt.step();
        }
        let mut ectx = Ctx::eval();
        let idx: Vec<usize> = (0..task.len(Split::Test).min(8)).collect();
        let (x, y) = task.batch(Split::Test, &idx);
        mse(model.forecast(&x, &mut ectx).value(), &y)
    };
    let full = train_and_eval(Ablation::FULL);
    let none = train_and_eval(Ablation::NO_BOTH);
    assert!(
        full < none * 1.5,
        "full model ({full}) collapsed relative to the ablation ({none})"
    );
}

#[test]
fn scaler_windows_and_metrics_compose() {
    // Metrics on standardized space match manual computation through the
    // whole pipeline.
    let task = tiny_task();
    let (x, y) = task.window(Split::Val, 1);
    assert_eq!(x.shape()[0], 32);
    assert_eq!(y.shape()[0], 16);
    let zero = Tensor::zeros(y.shape());
    let m = mse(&zero, &y);
    let manual: f32 =
        y.as_slice().iter().map(|v| v * v).sum::<f32>() / y.numel() as f32;
    assert!((m - manual).abs() < 1e-5);
}

#[test]
fn checkpoint_round_trips_a_trained_model() {
    use ts3_nn::Checkpoint;
    let task = tiny_task();
    let model = TS3Net::new(tiny_cfg(task.channels(), 32, 16), 8);
    let mut ctx = Ctx::train(0);
    let mut opt = Adam::new(model.parameters(), 2e-3);
    for step in 0..3 {
        let batches = task.epoch_batches(Split::Train, 4, step, Some(1));
        let (x, y) = task.batch(Split::Train, &batches[0]);
        let loss = model.forecast(&x, &mut ctx).mse_loss(&y);
        opt.zero_grad();
        loss.backward();
        opt.step();
    }
    let snapshot = Checkpoint::capture(&model.parameters()).expect("capture");
    let mut ectx = Ctx::eval();
    let (x, _) = task.batch(Split::Test, &[0]);
    let before = model.forecast(&x, &mut ectx).value().clone();
    // A fresh model with different seed restores to identical behavior.
    let fresh = TS3Net::new(tiny_cfg(task.channels(), 32, 16), 999);
    snapshot.restore(&fresh.parameters()).expect("restore");
    let after = fresh.forecast(&x, &mut ectx).value().clone();
    assert!(
        before.allclose(&after, 1e-6),
        "restored model diverges: {}",
        before.max_abs_diff(&after)
    );
}
