//! Deterministic schedule-fuzz race harness (`TS3_SCHED_FUZZ`).
//!
//! The worker pool's contract is that outputs never depend on the
//! schedule: not on which worker runs which row block, and not on the
//! order the mailboxes are woken. This sweep forces the point: for 16
//! fuzz seeds × thread counts {1, 2, 4} it recomputes a matmul, a
//! complex FFT, a real-input FFT, a triple decomposition and a TS3Net
//! forward pass under a freshly permuted schedule per dispatch, and
//! asserts every result is **bitwise** identical to the unfuzzed
//! single-thread baseline. A failure here means some kernel secretly
//! depends on scheduling — a shared accumulator, block-order
//! dependence, or a data race.
//!
//! Everything lives in one `#[test]` on purpose: the fuzz seed and the
//! thread cap are process-global, so concurrent tests inside this
//! binary would race on them.

use ts3_nn::Ctx;
use ts3_signal::fft::{fft, rfft_half};
use ts3_signal::{triple_decompose, TripleConfig};
use ts3_tensor::{par, Tensor};
use ts3net_core::{ForecastModel, TS3Net, TS3NetConfig};

const SEEDS: u64 = 16;
const THREADS: [usize; 3] = [1, 2, 4];

fn tiny_cfg(c: usize, lookback: usize, horizon: usize) -> TS3NetConfig {
    let mut cfg = TS3NetConfig::scaled(c, lookback, horizon);
    cfg.lambda = 4;
    cfg.d_model = 4;
    cfg.d_hidden = 4;
    cfg.dropout = 0.0;
    cfg
}

/// Deterministic, value-varied fill so block mixups cannot cancel.
fn series(n: usize, stride: usize) -> Vec<f32> {
    (0..n)
        .map(|i| ((i * stride + 3) as f32 * 0.173).sin() * (1.0 + i as f32 * 0.01))
        .collect()
}

/// One full pipeline evaluation under the current (fuzz, threads)
/// globals, flattened to bit patterns.
fn evaluate(model: &TS3Net, x: &Tensor) -> Vec<u32> {
    let mut bits = Vec::new();
    let push = |bits: &mut Vec<u32>, vals: &[f32]| {
        bits.extend(vals.iter().map(|v| v.to_bits()));
    };

    // Matmul: big enough that the pool actually dispatches multi-block.
    let a = Tensor::from_vec(series(37 * 64, 7), &[37, 64]);
    let b = Tensor::from_vec(series(64 * 48, 11), &[64, 48]);
    push(&mut bits, a.matmul(&b).as_slice());

    // Complex and real-input FFTs (256-point, radix-2 path).
    let sig = series(256, 5);
    let input: Vec<ts3_signal::Complex32> = sig
        .iter()
        .map(|&re| ts3_signal::Complex32::new(re, -0.25 * re))
        .collect();
    for c in fft(&input) {
        bits.push(c.re.to_bits());
        bits.push(c.im.to_bits());
    }
    for c in rfft_half(&sig) {
        bits.push(c.re.to_bits());
        bits.push(c.im.to_bits());
    }

    // Triple decomposition of a 2-channel window.
    let win = Tensor::from_vec(series(96 * 2, 3), &[96, 2]);
    let d = triple_decompose(&win, &TripleConfig { lambda: 4, ..Default::default() });
    push(&mut bits, d.trend.as_slice());
    push(&mut bits, d.seasonal.as_slice());
    push(&mut bits, d.fluctuant_1d.as_slice());
    push(&mut bits, d.fluctuant_2d.as_slice());

    // TS3Net forward pass (eval mode: no dropout, no tape).
    let mut ctx = Ctx::eval();
    push(&mut bits, model.forecast(x, &mut ctx).value().as_slice());
    bits
}

#[test]
fn sixteen_fuzzed_schedules_are_bitwise_identical() {
    // When the verify gate runs this binary with TS3_SCHED_FUZZ set,
    // the knob must actually have been picked up.
    let orig_fuzz = par::sched_fuzz();
    let orig_threads = par::max_threads();
    if std::env::var("TS3_SCHED_FUZZ").is_ok_and(|v| v.trim().parse::<u64>().is_ok()) {
        assert!(
            orig_fuzz.is_some(),
            "TS3_SCHED_FUZZ is set but par::sched_fuzz() resolved to off"
        );
    }

    let model = TS3Net::new(tiny_cfg(2, 32, 16), 42);
    let x = Tensor::from_vec(series(2 * 32 * 2, 13), &[2, 32, 2]);

    // Unfuzzed single-thread baseline.
    par::set_sched_fuzz(None);
    par::set_max_threads(1);
    let baseline = evaluate(&model, &x);

    let fuzzed_before = par::pool_stats().fuzzed_dispatches;
    for seed in 0..SEEDS {
        par::set_sched_fuzz(Some(seed));
        for threads in THREADS {
            par::set_max_threads(threads);
            let got = evaluate(&model, &x);
            assert_eq!(
                baseline.len(),
                got.len(),
                "seed {seed}, threads {threads}: output shape changed"
            );
            if let Some(i) = (0..baseline.len()).find(|&i| baseline[i] != got[i]) {
                panic!(
                    "seed {seed}, threads {threads}: bit divergence at flat index {i}: \
                     {:#010x} vs {:#010x}",
                    baseline[i], got[i]
                );
            }
        }
    }
    // The sweep must have exercised the fuzzed dispatch path (the
    // multi-thread legs dispatch through the pool).
    assert!(
        par::pool_stats().fuzzed_dispatches > fuzzed_before,
        "no dispatch ever took the fuzzed schedule path"
    );

    par::set_sched_fuzz(orig_fuzz);
    par::set_max_threads(orig_threads);
}
