//! Workspace-level property-based tests (proptest) pinning the core
//! mathematical invariants the reproduction relies on.

use proptest::prelude::*;
use ts3_autograd::{gradcheck_var, Var};
use ts3_data::{mask_batch, StandardScaler};
use ts3_signal::complex::Complex32;
use ts3_signal::fft::{dft_naive, fft, ifft};
use ts3_signal::{spectrum_gradient, triple_decompose, TripleConfig};
use ts3_tensor::Tensor;

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn fft_round_trip(values in prop::collection::vec(-10.0f32..10.0, 4..64)) {
        let x: Vec<Complex32> = values.iter().map(|&v| Complex32::from_real(v)).collect();
        let y = ifft(&fft(&x));
        for (a, b) in x.iter().zip(&y) {
            prop_assert!((a.re - b.re).abs() < 1e-2);
            prop_assert!(b.im.abs() < 1e-2);
        }
    }

    #[test]
    fn fft_matches_naive_dft(values in prop::collection::vec(-5.0f32..5.0, 3..33)) {
        let x: Vec<Complex32> = values.iter().map(|&v| Complex32::from_real(v)).collect();
        let fast = fft(&x);
        let slow = dft_naive(&x);
        for (a, b) in fast.iter().zip(&slow) {
            prop_assert!((a.re - b.re).abs() < 1e-2, "{a:?} vs {b:?}");
            prop_assert!((a.im - b.im).abs() < 1e-2);
        }
    }

    #[test]
    fn parseval_holds(values in prop::collection::vec(-5.0f32..5.0, 8..40)) {
        let n = values.len() as f32;
        let x: Vec<Complex32> = values.iter().map(|&v| Complex32::from_real(v)).collect();
        let time: f32 = values.iter().map(|v| v * v).sum();
        let freq: f32 = fft(&x).iter().map(|z| z.norm_sqr()).sum::<f32>() / n;
        prop_assert!((time - freq).abs() < 1e-2 * time.max(1.0));
    }

    #[test]
    fn triple_decomposition_reconstructs(
        seedlike in prop::collection::vec(-2.0f32..2.0, 48..96),
    ) {
        let t = seedlike.len();
        let x = Tensor::from_vec(seedlike, &[t, 1]);
        let cfg = TripleConfig { lambda: 4, ..Default::default() };
        let d = triple_decompose(&x, &cfg);
        // Eq. 1 + Eq. 10 are exact splits: trend + regular + fluctuant = x.
        prop_assert!(d.reconstruct().allclose(&x, 1e-3));
    }

    #[test]
    fn spectrum_gradient_inverts_by_prefix_sum(
        grid in prop::collection::vec(-3.0f32..3.0, 24..48),
        t_f in 2usize..8,
    ) {
        // Delta[t] = TF[t] - TF[t - t_f]; summing Delta over the chunk
        // chain recovers TF exactly.
        let t = grid.len();
        let tf = Tensor::from_vec(grid.clone(), &[1, t]);
        let g = spectrum_gradient(&tf, t_f);
        #[allow(clippy::needless_range_loop)]
        for start in 0..t {
            let mut acc = 0.0f32;
            let mut idx = start;
            loop {
                acc += g.at(&[0, idx]);
                if idx < t_f { break; }
                idx -= t_f;
            }
            prop_assert!((acc - grid[start]).abs() < 1e-3);
        }
    }

    #[test]
    fn scaler_round_trip(values in prop::collection::vec(-100.0f32..100.0, 10..60)) {
        let n = values.len();
        let x = Tensor::from_vec(values, &[n, 1]);
        let s = StandardScaler::fit(&x);
        let back = s.inverse_transform(&s.transform(&x));
        prop_assert!(back.allclose(&x, 1e-2));
    }

    #[test]
    fn mask_ratio_and_disjointness(ratio in 0.05f32..0.6, seed in 0u64..1000) {
        let x = Tensor::ones(&[2, 96, 4]);
        let mb = mask_batch(&x, ratio, seed);
        let measured = mb.mask.sum() / mb.mask.numel() as f32;
        prop_assert!((measured - ratio).abs() < 0.1);
        // masked * mask == 0 everywhere (hidden points really hidden).
        for (m, v) in mb.mask.as_slice().iter().zip(mb.masked.as_slice()) {
            prop_assert!(m * v == 0.0);
        }
    }

    #[test]
    fn gradcheck_random_two_layer_net(
        input in prop::collection::vec(-1.0f32..1.0, 6),
        wseed in 0u64..100,
    ) {
        let x = Tensor::from_vec(input, &[2, 3]);
        let report = gradcheck_var(
            |v| {
                let w1 = Var::constant(Tensor::randn(&[3, 4], wseed).mul_scalar(0.5));
                let w2 = Var::constant(Tensor::randn(&[4, 2], wseed + 1).mul_scalar(0.5));
                v.matmul(&w1).gelu().matmul(&w2).tanh().square().sum()
            },
            &x,
            1e-2,
        );
        prop_assert!(report.max_rel_err < 0.08, "rel err {}", report.max_rel_err);
    }

    #[test]
    fn tensor_broadcast_add_commutes(
        a in prop::collection::vec(-5.0f32..5.0, 6),
        b in prop::collection::vec(-5.0f32..5.0, 3),
    ) {
        let ta = Tensor::from_vec(a, &[2, 3]);
        let tb = Tensor::from_vec(b, &[3]);
        prop_assert!(ta.add(&tb).allclose(&tb.add(&ta), 1e-6));
    }

    #[test]
    fn matmul_distributes_over_addition(
        a in prop::collection::vec(-2.0f32..2.0, 4),
        b in prop::collection::vec(-2.0f32..2.0, 4),
        c in prop::collection::vec(-2.0f32..2.0, 4),
    ) {
        let ta = Tensor::from_vec(a, &[2, 2]);
        let tb = Tensor::from_vec(b, &[2, 2]);
        let tc = Tensor::from_vec(c, &[2, 2]);
        let lhs = ta.matmul(&tb.add(&tc));
        let rhs = ta.matmul(&tb).add(&ta.matmul(&tc));
        prop_assert!(lhs.allclose(&rhs, 1e-3));
    }
}
