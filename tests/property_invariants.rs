//! Workspace-level property tests pinning the core mathematical
//! invariants the reproduction relies on.
//!
//! Each test sweeps `CASES` deterministically seeded random inputs from
//! [`ts3_rng`] (one seed per case, derived from a per-test base seed),
//! replacing the former proptest suite so the workspace needs no
//! external crates. Failures print the offending case seed; re-running
//! is exactly reproducible.

use ts3_autograd::{gradcheck_var, Var};
use ts3_data::{mask_batch, StandardScaler};
use ts3_rng::rngs::StdRng;
use ts3_rng::{Rng, SeedableRng};
use ts3_signal::complex::Complex32;
use ts3_signal::fft::{dft_naive, fft, ifft};
use ts3_signal::{spectrum_gradient, triple_decompose, TripleConfig};
use ts3_tensor::Tensor;

const CASES: u64 = 16;

/// One seeded RNG per case: `base` identifies the test, `case` the sweep
/// index, so cases are independent and individually reproducible.
fn case_rng(base: u64, case: u64) -> StdRng {
    StdRng::seed_from_u64(base ^ (case.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
}

fn vec_in(rng: &mut StdRng, lo: f32, hi: f32, len_lo: usize, len_hi: usize) -> Vec<f32> {
    let n = rng.gen_range(len_lo..len_hi);
    (0..n).map(|_| rng.gen_range(lo..hi)).collect()
}

#[test]
fn fft_round_trip() {
    for case in 0..CASES {
        let mut rng = case_rng(0x0F71, case);
        let values = vec_in(&mut rng, -10.0, 10.0, 4, 64);
        let x: Vec<Complex32> = values.iter().map(|&v| Complex32::from_real(v)).collect();
        let y = ifft(&fft(&x));
        for (a, b) in x.iter().zip(&y) {
            assert!((a.re - b.re).abs() < 1e-2, "case {case}");
            assert!(b.im.abs() < 1e-2, "case {case}");
        }
    }
}

#[test]
fn fft_matches_naive_dft() {
    for case in 0..CASES {
        let mut rng = case_rng(0x0F72, case);
        let values = vec_in(&mut rng, -5.0, 5.0, 3, 33);
        let x: Vec<Complex32> = values.iter().map(|&v| Complex32::from_real(v)).collect();
        let fast = fft(&x);
        let slow = dft_naive(&x);
        for (a, b) in fast.iter().zip(&slow) {
            assert!((a.re - b.re).abs() < 1e-2, "case {case}: {a:?} vs {b:?}");
            assert!((a.im - b.im).abs() < 1e-2, "case {case}");
        }
    }
}

#[test]
fn parseval_holds() {
    for case in 0..CASES {
        let mut rng = case_rng(0x0F73, case);
        let values = vec_in(&mut rng, -5.0, 5.0, 8, 40);
        let n = values.len() as f32;
        let x: Vec<Complex32> = values.iter().map(|&v| Complex32::from_real(v)).collect();
        let time: f32 = values.iter().map(|v| v * v).sum();
        let freq: f32 = fft(&x).iter().map(|z| z.norm_sqr()).sum::<f32>() / n;
        assert!((time - freq).abs() < 1e-2 * time.max(1.0), "case {case}");
    }
}

#[test]
fn triple_decomposition_reconstructs() {
    for case in 0..CASES {
        let mut rng = case_rng(0x0F74, case);
        let seedlike = vec_in(&mut rng, -2.0, 2.0, 48, 96);
        let t = seedlike.len();
        let x = Tensor::from_vec(seedlike, &[t, 1]);
        let cfg = TripleConfig { lambda: 4, ..Default::default() };
        let d = triple_decompose(&x, &cfg);
        // Eq. 1 + Eq. 10 are exact splits: trend + regular + fluctuant = x.
        assert!(d.reconstruct().allclose(&x, 1e-3), "case {case}");
    }
}

#[test]
fn spectrum_gradient_inverts_by_prefix_sum() {
    for case in 0..CASES {
        let mut rng = case_rng(0x0F75, case);
        let grid = vec_in(&mut rng, -3.0, 3.0, 24, 48);
        let t_f = rng.gen_range(2usize..8);
        // Delta[t] = TF[t] - TF[t - t_f]; summing Delta over the chunk
        // chain recovers TF exactly.
        let t = grid.len();
        let tf = Tensor::from_vec(grid.clone(), &[1, t]);
        let g = spectrum_gradient(&tf, t_f);
        #[allow(clippy::needless_range_loop)]
        for start in 0..t {
            let mut acc = 0.0f32;
            let mut idx = start;
            loop {
                acc += g.at(&[0, idx]);
                if idx < t_f {
                    break;
                }
                idx -= t_f;
            }
            assert!((acc - grid[start]).abs() < 1e-3, "case {case}");
        }
    }
}

#[test]
fn scaler_round_trip() {
    for case in 0..CASES {
        let mut rng = case_rng(0x0F76, case);
        let values = vec_in(&mut rng, -100.0, 100.0, 10, 60);
        let n = values.len();
        let x = Tensor::from_vec(values, &[n, 1]);
        let s = StandardScaler::fit(&x);
        let back = s.inverse_transform(&s.transform(&x));
        assert!(back.allclose(&x, 1e-2), "case {case}");
    }
}

#[test]
fn mask_ratio_and_disjointness() {
    for case in 0..CASES {
        let mut rng = case_rng(0x0F77, case);
        let ratio = rng.gen_range(0.05f32..0.6);
        let seed = rng.gen_range(0u64..1000);
        let x = Tensor::ones(&[2, 96, 4]);
        let mb = mask_batch(&x, ratio, seed);
        let measured = mb.mask.sum() / mb.mask.numel() as f32;
        assert!((measured - ratio).abs() < 0.1, "case {case}");
        // masked * mask == 0 everywhere (hidden points really hidden).
        for (m, v) in mb.mask.as_slice().iter().zip(mb.masked.as_slice()) {
            assert!(m * v == 0.0, "case {case}");
        }
    }
}

#[test]
fn gradcheck_random_two_layer_net() {
    for case in 0..CASES {
        let mut rng = case_rng(0x0F78, case);
        let input: Vec<f32> = (0..6).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let wseed = rng.gen_range(0u64..100);
        let x = Tensor::from_vec(input, &[2, 3]);
        let report = gradcheck_var(
            |v| {
                let w1 = Var::constant(Tensor::randn(&[3, 4], wseed).mul_scalar(0.5));
                let w2 = Var::constant(Tensor::randn(&[4, 2], wseed + 1).mul_scalar(0.5));
                v.matmul(&w1).gelu().matmul(&w2).tanh().square().sum()
            },
            &x,
            1e-2,
        );
        assert!(
            report.max_rel_err < 0.08,
            "case {case}: rel err {}",
            report.max_rel_err
        );
    }
}

#[test]
fn tensor_broadcast_add_commutes() {
    for case in 0..CASES {
        let mut rng = case_rng(0x0F79, case);
        let a: Vec<f32> = (0..6).map(|_| rng.gen_range(-5.0f32..5.0)).collect();
        let b: Vec<f32> = (0..3).map(|_| rng.gen_range(-5.0f32..5.0)).collect();
        let ta = Tensor::from_vec(a, &[2, 3]);
        let tb = Tensor::from_vec(b, &[3]);
        assert!(ta.add(&tb).allclose(&tb.add(&ta), 1e-6), "case {case}");
    }
}

#[test]
fn matmul_distributes_over_addition() {
    for case in 0..CASES {
        let mut rng = case_rng(0x0F7A, case);
        let mut mat = || -> Tensor {
            let v: Vec<f32> = (0..4).map(|_| rng.gen_range(-2.0f32..2.0)).collect();
            Tensor::from_vec(v, &[2, 2])
        };
        let (ta, tb, tc) = (mat(), mat(), mat());
        let lhs = ta.matmul(&tb.add(&tc));
        let rhs = ta.matmul(&tb).add(&ta.matmul(&tc));
        assert!(lhs.allclose(&rhs, 1e-3), "case {case}");
    }
}
