//! Integration tests over the complete model zoo: every Table IV model
//! builds, forecasts with the right shape, takes a training step that
//! reduces loss, and works as an imputer.

use ts3_baselines::{build_forecaster, build_imputer, BaselineConfig, TABLE4_MODELS};
use ts3_nn::{Adam, Ctx, Optimizer};
use ts3_tensor::Tensor;
use ts3net_core::TS3NetConfig;

fn configs(c: usize, lookback: usize, horizon: usize) -> (BaselineConfig, TS3NetConfig) {
    let cfg = BaselineConfig::scaled(c, lookback, horizon);
    let mut ts3 = TS3NetConfig::scaled(c, lookback, horizon);
    ts3.lambda = 4;
    ts3.d_model = 4;
    ts3.d_hidden = 4;
    ts3.dropout = 0.0;
    (cfg, ts3)
}

fn periodic_batch(b: usize, t: usize, c: usize) -> Tensor {
    let mut v = Vec::with_capacity(b * t * c);
    for bi in 0..b {
        for ti in 0..t {
            for ci in 0..c {
                v.push((std::f32::consts::TAU * ti as f32 / 8.0 + (bi * c + ci) as f32).sin());
            }
        }
    }
    Tensor::from_vec(v, &[b, t, c])
}

#[test]
fn every_model_takes_a_useful_training_step() {
    let (cfg, ts3) = configs(3, 24, 12);
    let x = periodic_batch(2, 24, 3);
    let y = periodic_batch(2, 12, 3).mul_scalar(0.5);
    for name in TABLE4_MODELS {
        let model = build_forecaster(name, &cfg, &ts3, 7);
        let mut opt = Adam::new(model.parameters(), 2e-3);
        let mut ctx = Ctx::train(0);
        let mut first = 0.0f32;
        let mut last = 0.0f32;
        for step in 0..6 {
            let loss = model.forecast(&x, &mut ctx).mse_loss(&y);
            if step == 0 {
                first = loss.value().item();
            }
            last = loss.value().item();
            opt.zero_grad();
            loss.backward();
            opt.step();
        }
        assert!(
            last < first,
            "{name}: loss did not decrease ({first} -> {last})"
        );
    }
}

#[test]
fn every_model_is_batch_consistent() {
    // Forecasting a batch must equal forecasting each window separately
    // (models with batch statistics would violate this; none should).
    let (cfg, ts3) = configs(2, 16, 8);
    let x = periodic_batch(2, 16, 2);
    for name in TABLE4_MODELS {
        // Auto-correlation and period detection pool statistics across
        // the batch by design (data-dependent constants); skip those two.
        if name == "Autoformer" || name == "TimesNet" || name == "TS3Net" {
            continue;
        }
        let model = build_forecaster(name, &cfg, &ts3, 3);
        let mut ctx = Ctx::eval();
        let joint = model.forecast(&x, &mut ctx);
        let solo0 = model.forecast(&x.narrow(0, 0, 1), &mut ctx);
        assert!(
            joint
                .value()
                .narrow(0, 0, 1)
                .allclose(solo0.value(), 1e-4),
            "{name}: batch inconsistency"
        );
    }
}

#[test]
fn every_imputer_reconstructs_with_finite_error() {
    let (cfg, ts3) = configs(2, 16, 16);
    let x = periodic_batch(1, 16, 2);
    let mask = Tensor::from_vec(
        (0..32).map(|i| if i % 3 == 0 { 1.0 } else { 0.0 }).collect(),
        &[1, 16, 2],
    );
    let keep = mask.map(|m| 1.0 - m);
    let masked = x.mul(&keep);
    for name in TABLE4_MODELS {
        let model = build_imputer(name, &cfg, &ts3, 11);
        let mut ctx = Ctx::eval();
        let y = model.impute(&masked, &mask, &mut ctx);
        assert_eq!(y.shape(), &[1, 16, 2], "{name}");
        assert!(y.value().all_finite(), "{name}: non-finite output");
    }
}

#[test]
fn models_are_deterministic_per_seed() {
    let (cfg, ts3) = configs(2, 16, 8);
    let x = periodic_batch(1, 16, 2);
    for name in ["TS3Net", "PatchTST", "MICN"] {
        let a = build_forecaster(name, &cfg, &ts3, 5);
        let b = build_forecaster(name, &cfg, &ts3, 5);
        let mut c1 = Ctx::eval();
        let mut c2 = Ctx::eval();
        let ya = a.forecast(&x, &mut c1);
        let yb = b.forecast(&x, &mut c2);
        assert!(
            ya.value().allclose(yb.value(), 1e-6),
            "{name}: same seed produced different models"
        );
    }
}

#[test]
fn parameter_counts_are_positive_and_stable() {
    let (cfg, ts3) = configs(3, 24, 12);
    for name in TABLE4_MODELS {
        let m1 = build_forecaster(name, &cfg, &ts3, 0);
        let m2 = build_forecaster(name, &cfg, &ts3, 1);
        assert!(m1.num_parameters() > 0, "{name}");
        assert_eq!(
            m1.num_parameters(),
            m2.num_parameters(),
            "{name}: parameter count depends on the seed"
        );
    }
}
