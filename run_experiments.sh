#!/bin/bash
# Regenerate every table and figure at the quick profile, logging to results/logs/.
cd /root/repo
set -x
for b in table2 table3 fig5 table4 table5 table6 table7 table8 table9 fig3 fig4; do
  ./target/release/$b > results/logs/$b.log 2>&1
  echo "DONE $b $(date +%H:%M:%S)"
done
echo "ALL EXPERIMENTS DONE"
